//! Tests for terminal-op fusion: the final server of a chained
//! `LookupPath` walk executes the coalesced stat/open (or lists its shard
//! of the target directory) in the resolution exchange itself.
//!
//! Counting convention as in `chained_resolution.rs`: `sends()` counts
//! every message, a chain over r runs of co-located components costs
//! r + 1 messages, and a fused terminal adds zero messages when the
//! terminal inode lives on the final chain server — and exactly one
//! follow-up round trip (2 sends) when it does not.

use fsapi::{Errno, MkdirOpts, Mode, OpenFlags, ProcFs};
use hare_core::proto::{Reply, Request, ServerMsg};
use hare_core::{dentry_shard, HareConfig, HareInstance, InodeId, Techniques};
use std::sync::Arc;
use vtime::Topology;

/// Builds `depth - 1` distributed directories under `/` (names brute-
/// forced to the pinned shards when given) and a file named so its dentry
/// hashes to `file_shard` (when pinned). Returns the per-component shards
/// (file included) and the file path.
fn build_tree(
    inst: &Arc<HareInstance>,
    depth: usize,
    dir_shards: Option<&[u16]>,
    file_shard: Option<u16>,
) -> (Vec<u16>, String) {
    assert!(depth >= 1);
    let nservers = inst.servers().len();
    let setup = inst.new_client(0).unwrap();
    let mut path = String::new();
    let mut parent = InodeId::ROOT;
    let mut shards = Vec::new();
    for level in 0..depth - 1 {
        let name = match dir_shards {
            Some(w) => (0..)
                .map(|i| format!("c{level}x{i}"))
                .find(|n| dentry_shard(parent, true, n, nservers) == w[level])
                .unwrap(),
            None => format!("c{level}"),
        };
        shards.push(dentry_shard(parent, true, &name, nservers));
        path = format!("{path}/{name}");
        setup
            .mkdir_opts(&path, Mode::default(), MkdirOpts::DISTRIBUTED)
            .unwrap();
        let st = setup.stat(&path).unwrap();
        parent = InodeId {
            server: st.server,
            num: st.ino,
        };
    }
    let fname = match file_shard {
        Some(w) => (0..)
            .map(|i| format!("fx{i}"))
            .find(|n| dentry_shard(parent, true, n, nservers) == w)
            .unwrap(),
        None => "f".to_string(),
    };
    shards.push(dentry_shard(parent, true, &fname, nservers));
    let file = format!("{path}/{fname}");
    fsapi::write_file(&setup, &file, b"x").unwrap();
    drop(setup);
    (shards, file)
}

/// Number of runs of consecutive equal shards.
fn runs(shards: &[u16]) -> u64 {
    if shards.is_empty() {
        return 0;
    }
    1 + shards.windows(2).filter(|w| w[0] != w[1]).count() as u64
}

/// Message sends for one operation on a fresh (cold-cache) client.
fn cold_sends(
    inst: &Arc<HareInstance>,
    op: impl FnOnce(&hare_core::ClientLib) -> u16,
) -> (u64, u16) {
    let prober = inst.new_client(0).unwrap();
    let before = inst.machine().msg_stats.sends();
    let ino_server = op(&prober);
    let delta = inst.machine().msg_stats.sends() - before;
    drop(prober);
    (delta, ino_server)
}

#[test]
fn fused_stat_and_open_exchange_counts_across_depths_and_servers() {
    // Depths 1/4/8 × 1/2/8 servers, fusion on and off. On a single-socket
    // machine creation affinity stores every inode at its dentry shard,
    // so the terminal is always co-located and the fused stat/open adds
    // zero messages to the chain.
    for &nservers in &[1usize, 2, 8] {
        for &depth in &[1usize, 4, 8] {
            for &fused in &[true, false] {
                let mut cfg = HareConfig::timeshare(nservers);
                if !fused {
                    cfg.techniques = Techniques::without("fused_terminal");
                }
                let inst = HareInstance::start(cfg);
                let (shards, file) = build_tree(&inst, depth, None, None);
                let p = shards.len() as u64;
                let chain = if p >= 2 { runs(&shards) + 1 } else { 2 };
                let dirs = &shards[..shards.len() - 1];
                let parent_resolve = if dirs.len() >= 2 {
                    runs(dirs) + 1
                } else {
                    2 * dirs.len() as u64
                };

                let (stat_sends, ino_server) = cold_sends(&inst, |c| c.stat(&file).unwrap().server);
                assert_eq!(
                    ino_server,
                    *shards.last().unwrap(),
                    "single socket: affinity co-locates the inode"
                );
                let want = if fused { chain } else { parent_resolve + 2 };
                assert_eq!(
                    stat_sends, want,
                    "stat: depth {depth}, {nservers} servers, fused={fused}, shards {shards:?}"
                );

                let (open_sends, _) = cold_sends(&inst, |c| {
                    let fd = c.open(&file, OpenFlags::RDONLY, Mode::default()).unwrap();
                    c.close(fd).unwrap();
                    0
                });
                // Opening adds the CloseFd round trip to either protocol.
                assert_eq!(
                    open_sends,
                    want + 2,
                    "open: depth {depth}, {nservers} servers, fused={fused}, shards {shards:?}"
                );
                inst.shutdown();
            }
        }
    }
}

#[test]
fn remote_terminal_inode_degrades_to_one_follow_up_round_trip() {
    // A two-socket machine: the creating client runs on socket 0, the
    // file's dentry shard is pinned to socket 1, so creation affinity
    // places the inode on the client's designated *local* server (socket
    // 0) — away from the final chain server. The fused chain answers the
    // dentry alone and the client pays exactly one follow-up round trip;
    // a co-located sibling (shard on socket 0, where its inode also
    // lands) answers entirely in the chain.
    let mut cfg = HareConfig::timeshare(8);
    cfg.topology = Topology::new(2, 4);
    let inst = HareInstance::start(cfg);

    let (shards_remote, remote) = build_tree(&inst, 4, Some(&[0, 0, 0]), Some(5));
    let (remote_sends, remote_ino) = cold_sends(&inst, |c| c.stat(&remote).unwrap().server);
    assert_ne!(remote_ino, 5, "cross-socket shard: inode stays local");
    assert_eq!(remote_sends, runs(&shards_remote) + 1 + 2);

    // The sibling under the same (now freshly re-resolved) directories:
    // shard 0 is on the creator's socket, so the inode lands there too.
    let nservers = inst.servers().len();
    let setup = inst.new_client(0).unwrap();
    let parent_path = remote.rsplit_once('/').unwrap().0.to_string();
    let pstat = setup.stat(&parent_path).unwrap();
    let parent = InodeId {
        server: pstat.server,
        num: pstat.ino,
    };
    let co_name = (0..)
        .map(|i| format!("gx{i}"))
        .find(|n| dentry_shard(parent, true, n, nservers) == 0)
        .unwrap();
    let co = format!("{parent_path}/{co_name}");
    fsapi::write_file(&setup, &co, b"x").unwrap();
    drop(setup);
    let mut shards_co = shards_remote.clone();
    *shards_co.last_mut().unwrap() = 0;
    let (co_sends, co_ino) = cold_sends(&inst, |c| c.stat(&co).unwrap().server);
    assert_eq!(co_ino, 0, "same-socket shard: affinity co-locates");
    assert_eq!(co_sends, runs(&shards_co) + 1);

    // The same split for open: co-located opens in the chain, remote pays
    // the OpenInode follow-up (plus CloseFd either way).
    let (open_remote, _) = cold_sends(&inst, |c| {
        let fd = c.open(&remote, OpenFlags::RDONLY, Mode::default()).unwrap();
        c.close(fd).unwrap();
        0
    });
    assert_eq!(open_remote, runs(&shards_remote) + 1 + 2 + 2);
    let (open_co, _) = cold_sends(&inst, |c| {
        let fd = c.open(&co, OpenFlags::RDONLY, Mode::default()).unwrap();
        c.close(fd).unwrap();
        0
    });
    assert_eq!(open_co, runs(&shards_co) + 1 + 2);
    inst.shutdown();
}

/// Sends a raw rmdir-protocol message to server 0 and awaits the reply.
fn raw_rmdir_msg(inst: &Arc<HareInstance>, req: Request) -> Reply {
    let (tx, rx) = msg::channel(Arc::clone(&inst.machine().msg_stats));
    inst.servers()[0]
        .tx
        .send(
            ServerMsg {
                req,
                reply: tx,
                span: None,
            },
            0,
            0,
        )
        .unwrap();
    rx.recv().unwrap().payload.unwrap()
}

#[test]
fn fused_open_of_rmdir_marked_path_degrades_to_eagain_retry() {
    // A fused open(O_CREAT) whose path crosses a directory marked for
    // deletion must stop the chain with EAGAIN and retry the final
    // component as a parkable single RPC — never open (or create) a
    // descriptor on the to-be-deleted directory. Exercised for both rmdir
    // outcomes: after ABORT the parked retry proceeds and the create
    // wins; after COMMIT the open fails ENOENT outright (had the fused
    // chain opened anything mid-mark, this open would wrongly succeed and
    // leak an orphan fd).
    for &commit in &[false, true] {
        let inst = HareInstance::start(HareConfig::timeshare(1));
        let setup = inst.new_client(0).unwrap();
        setup
            .mkdir_opts("/a", Mode::default(), MkdirOpts::default())
            .unwrap();
        setup
            .mkdir_opts("/a/d", Mode::default(), MkdirOpts::default())
            .unwrap();
        let dstat = setup.stat("/a/d").unwrap();
        let dir = InodeId {
            server: dstat.server,
            num: dstat.ino,
        };
        drop(setup);

        // Mark /a/d for deletion (the prepare phase of a distributed
        // rmdir, driven raw so the window stays open).
        match raw_rmdir_msg(&inst, Request::RmdirMark { dir }) {
            Reply::RmdirMark(_) => {}
            other => panic!("unexpected {other:?}"),
        }

        // The open must park behind the mark; drive it from a thread and
        // resolve the rmdir from here.
        let inst2 = Arc::clone(&inst);
        let opener = std::thread::spawn(move || {
            let c = inst2.new_client(0).unwrap();
            let r = c
                .open(
                    "/a/d/x",
                    OpenFlags::CREAT | OpenFlags::WRONLY,
                    Mode::default(),
                )
                .inspect(|&fd| c.close(fd).unwrap());
            drop(c);
            r
        });
        std::thread::sleep(std::time::Duration::from_millis(100));
        let resolve = if commit {
            Request::RmdirCommit { dir }
        } else {
            Request::RmdirAbort { dir }
        };
        match raw_rmdir_msg(&inst, resolve) {
            Reply::Unit => {}
            other => panic!("unexpected {other:?}"),
        }
        let outcome = opener.join().unwrap();
        if commit {
            // The directory is gone: no descriptor may exist. A fused
            // open that had executed mid-mark would have returned one.
            assert_eq!(outcome.unwrap_err(), Errno::ENOENT);
        } else {
            // The rmdir aborted: the parked retry proceeds and the
            // create succeeds normally.
            assert!(outcome.is_ok(), "open after abort: {outcome:?}");
        }
        inst.shutdown();
    }
}

#[test]
fn rename_pair_resolution_dedups_partially_shared_prefixes() {
    // rename("/A/B/f1", "/A/B/C/D/f2"): the parent chains [A, B] and
    // [A, B, C, D] share the prefix [A, B] — which is the whole shorter
    // remainder — so one LookupPath serves both and the longer chain
    // continues with [C, D] alone. Shards are pinned so the shared prefix
    // spans a server boundary: re-resolving it per chain would cost an
    // extra forward, which the dedup saves.
    let inst = HareInstance::start(HareConfig::timeshare(2));
    let nservers = 2usize;
    let setup = inst.new_client(0).unwrap();
    let mut parent = InodeId::ROOT;
    let mut path = String::new();
    // A@0, B@1, C@1, D@1.
    let mut ino_of = Vec::new();
    for (level, want) in [0u16, 1, 1, 1].iter().enumerate() {
        let name = (0..)
            .map(|i| format!("p{level}x{i}"))
            .find(|n| dentry_shard(parent, true, n, nservers) == *want)
            .unwrap();
        path = format!("{path}/{name}");
        setup
            .mkdir_opts(&path, Mode::default(), MkdirOpts::DISTRIBUTED)
            .unwrap();
        let st = setup.stat(&path).unwrap();
        parent = InodeId {
            server: st.server,
            num: st.ino,
        };
        ino_of.push((path.clone(), parent));
    }
    let (old_dir_path, old_dir) = ino_of[1].clone(); // /A/B
    let (new_dir_path, new_dir) = ino_of[3].clone(); // /A/B/C/D
                                                     // f1 in B and the f2 target name in D, both pinned to server 0 so the
                                                     // commit's AddMap+RmMap pair shares one batched exchange.
    let f1 = (0..)
        .map(|i| format!("f1x{i}"))
        .find(|n| dentry_shard(old_dir, true, n, nservers) == 0)
        .unwrap();
    let f2 = (0..)
        .map(|i| format!("f2x{i}"))
        .find(|n| dentry_shard(new_dir, true, n, nservers) == 0)
        .unwrap();
    let old = format!("{old_dir_path}/{f1}");
    let new = format!("{new_dir_path}/{f2}");
    fsapi::write_file(&setup, &old, b"x").unwrap();
    drop(setup);

    let c = inst.new_client(0).unwrap();
    let before = inst.machine().msg_stats.sends();
    c.rename(&old, &new).unwrap();
    let sends = inst.machine().msg_stats.sends() - before;
    // Shared prefix chain [A@0, B@1]: request + forward + reply = 3.
    // Longer chain's suffix [C@1, D@1]: request + reply = 2.
    // Lookup of f1: 2. Batched AddMap+RmMap pair at server 0: 2.
    // (Without the partial dedup the pair resolution pays two full
    // chains, 3 + 3, for 10 sends in total.)
    assert_eq!(sends, 3 + 2 + 2 + 2);
    assert_eq!(c.stat(&new).unwrap().size, 1);
    assert_eq!(c.stat(&old).unwrap_err(), Errno::ENOENT);
    drop(c);
    inst.shutdown();
}

#[test]
fn rename_pair_resolution_dedups_diverging_suffixes_over_a_shared_prefix() {
    // rename("/A/B/C/X/f1", "/A/B/C/Y/f2"): neither parent remainder is
    // a prefix of the other — they diverge after [A, B, C] — but the
    // shared prefix spans three server runs (A@0, B@1, C@0), so
    // re-resolving it per chain would pay the forwards twice. The
    // diverging-prefix dedup chains [A, B, C] once and splits: X@1 and
    // Y@0 then resolve as two overlapped singles.
    let inst = HareInstance::start(HareConfig::timeshare(2));
    let nservers = 2usize;
    let setup = inst.new_client(0).unwrap();
    let pin = |parent: InodeId, prefix: &str, want: u16| {
        (0..)
            .map(|i| format!("{prefix}{i}"))
            .find(|n| dentry_shard(parent, true, n, nservers) == want)
            .unwrap()
    };
    let mkdir_pinned = |parent: InodeId, base: &str, prefix: &str, want: u16| {
        let name = pin(parent, prefix, want);
        let path = if base.is_empty() {
            format!("/{name}")
        } else {
            format!("{base}/{name}")
        };
        setup
            .mkdir_opts(&path, Mode::default(), MkdirOpts::DISTRIBUTED)
            .unwrap();
        let st = setup.stat(&path).unwrap();
        (
            path,
            InodeId {
                server: st.server,
                num: st.ino,
            },
        )
    };
    let (a_path, a) = mkdir_pinned(InodeId::ROOT, "", "a", 0);
    let (b_path, b) = mkdir_pinned(a, &a_path, "b", 1);
    let (c_path, cc) = mkdir_pinned(b, &b_path, "c", 0);
    let (x_path, x) = mkdir_pinned(cc, &c_path, "x", 1);
    let (y_path, y) = mkdir_pinned(cc, &c_path, "y", 0);
    // f1 in X and the f2 target name in Y, both pinned to server 0 so the
    // commit's AddMap+RmMap pair shares one batched exchange.
    let old = format!("{x_path}/{}", pin(x, "f1x", 0));
    let new = format!("{y_path}/{}", pin(y, "f2x", 0));
    fsapi::write_file(&setup, &old, b"x").unwrap();
    drop(setup);

    let c = inst.new_client(0).unwrap();
    let before = inst.machine().msg_stats.sends();
    c.rename(&old, &new).unwrap();
    let sends = inst.machine().msg_stats.sends() - before;
    // Shared prefix chain [A@0, B@1, C@0]: request + 2 forwards + reply
    // = 4. Diverged singles X@1 and Y@0, overlapped: 2 + 2. Lookup of
    // f1: 2. Batched AddMap+RmMap pair at server 0: 2. (Without the
    // dedup the pair resolution pays the prefix runs in both chains —
    // a 5-send and a 4-send chain — for 13 sends in total.)
    assert_eq!(sends, 4 + 2 + 2 + 2 + 2);
    assert_eq!(c.stat(&new).unwrap().size, 1);
    assert_eq!(c.stat(&old).unwrap_err(), Errno::ENOENT);
    drop(c);
    inst.shutdown();
}

#[test]
fn fused_readdir_rides_the_resolution_chain() {
    // Distributed target: the final chain server's shard returns with the
    // resolution reply, so the fan-out skips that server (one exchange
    // saved). Centralized target whose home answers the chain: the whole
    // listing rides the chain and the fan-out round disappears.
    let nservers = 4usize;
    let inst = HareInstance::start(HareConfig::timeshare(nservers));
    let setup = inst.new_client(0).unwrap();
    setup
        .mkdir_opts("/p", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    setup
        .mkdir_opts("/p/q", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    setup
        .mkdir_opts("/p/c", Mode::default(), MkdirOpts::default())
        .unwrap();
    for i in 0..12 {
        fsapi::write_file(&setup, &format!("/p/q/e{i}"), b"x").unwrap();
        fsapi::write_file(&setup, &format!("/p/c/e{i}"), b"x").unwrap();
    }
    let p_shard = dentry_shard(InodeId::ROOT, true, "p", nservers);
    let pstat = setup.stat("/p").unwrap();
    let p_ino = InodeId {
        server: pstat.server,
        num: pstat.ino,
    };
    let q_shard = dentry_shard(p_ino, true, "q", nservers);
    let c_shard = dentry_shard(p_ino, true, "c", nservers);
    let cstat = setup.stat("/p/c").unwrap();
    // Single socket: the centralized directory's home is its dentry shard.
    assert_eq!(cstat.server, c_shard);
    drop(setup);

    let chain = |shards: &[u16]| runs(shards) + 1;

    // Distributed /p/q: chain + (nservers - 1) ListShard exchanges.
    let (dist_sends, _) = cold_sends(&inst, |c| {
        assert_eq!(c.readdir("/p/q").unwrap().len(), 12);
        0
    });
    assert_eq!(
        dist_sends,
        chain(&[p_shard, q_shard]) + 2 * (nservers as u64 - 1)
    );

    // Centralized /p/c resolved by its own home: the listing rides the
    // chain, no follow-up at all.
    let (central_sends, _) = cold_sends(&inst, |c| {
        assert_eq!(c.readdir("/p/c").unwrap().len(), 12);
        0
    });
    assert_eq!(central_sends, chain(&[p_shard, c_shard]));

    // Fusion off: the full fan-out (or the single home round trip) is
    // paid after resolution.
    let mut cfg = HareConfig::timeshare(nservers);
    cfg.techniques = Techniques::without("fused_terminal");
    let inst_off = HareInstance::start(cfg);
    let setup = inst_off.new_client(0).unwrap();
    setup
        .mkdir_opts("/p", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    setup
        .mkdir_opts("/p/q", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    for i in 0..12 {
        fsapi::write_file(&setup, &format!("/p/q/e{i}"), b"x").unwrap();
    }
    drop(setup);
    let (off_sends, _) = cold_sends(&inst_off, |c| {
        assert_eq!(c.readdir("/p/q").unwrap().len(), 12);
        0
    });
    assert_eq!(off_sends, chain(&[p_shard, q_shard]) + 2 * nservers as u64);
    inst.shutdown();
    inst_off.shutdown();
}

#[test]
fn fused_readdir_plus_saves_one_listing_exchange() {
    // The ls -l pattern end to end: resolution chains into the listing,
    // the per-entry stats still group by inode server, and the fused and
    // unfused listings agree.
    let nservers = 4usize;
    let mk = |fused: bool| {
        let mut cfg = HareConfig::timeshare(nservers);
        if !fused {
            cfg.techniques = Techniques::without("fused_terminal");
        }
        let inst = HareInstance::start(cfg);
        let setup = inst.new_client(0).unwrap();
        setup
            .mkdir_opts("/big", Mode::default(), MkdirOpts::DISTRIBUTED)
            .unwrap();
        for i in 0..16 {
            fsapi::write_file(&setup, &format!("/big/e{i}"), b"x").unwrap();
        }
        drop(setup);
        inst
    };
    let count = |inst: &Arc<HareInstance>| {
        let c = inst.new_client(0).unwrap();
        let before = inst.machine().msg_stats.sends();
        let listed = c.readdir_plus("/big").unwrap();
        let sends = inst.machine().msg_stats.sends() - before;
        let names: Vec<String> = listed.into_iter().map(|(e, _)| e.name).collect();
        drop(c);
        (sends, names)
    };
    let on = mk(true);
    let off = mk(false);
    let (on_sends, on_names) = count(&on);
    let (off_sends, off_names) = count(&off);
    assert_eq!(on_names, off_names);
    assert_eq!(on_names.len(), 16);
    // /big is one uncached component: resolution is a single (coalesced)
    // exchange either way, but the fused listing rides it, saving the
    // final server's ListShard from the fan-out... except a single
    // component never chains — so the two protocols tie here, and the
    // saving shows on deeper paths (previous test). What must hold
    // regardless: fusion never costs extra exchanges.
    assert!(on_sends <= off_sends, "{on_sends} vs {off_sends}");
    on.shutdown();
    off.shutdown();
}
