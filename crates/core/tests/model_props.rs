//! Model-based property tests: random operation sequences on Hare must
//! behave identically to a trivial reference file system (a map of paths
//! to byte vectors), including error codes — and stay behaviorally
//! identical when a live shard migration is injected at an arbitrary
//! point of the trace (the dynamic placement subsystem must be
//! transparent to every operation, with bounded message overhead).

use fsapi::{Errno, Mode, OpenFlags, ProcFs};
use hare_core::{HareConfig, HareInstance};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A reference model: directories and files by absolute path.
#[derive(Debug, Default)]
struct Model {
    dirs: BTreeMap<String, ()>,
    files: BTreeMap<String, Vec<u8>>,
}

impl Model {
    /// `Ok(())` when the parent resolves to a directory; the POSIX errno
    /// otherwise (`ENOTDIR` when a file is in the way, `ENOENT` when the
    /// parent is missing).
    fn parent_ok(&self, path: &str) -> Result<(), Errno> {
        match path.rfind('/') {
            Some(0) => Ok(()),
            Some(i) => {
                let parent = &path[..i];
                if self.dirs.contains_key(parent) {
                    Ok(())
                } else if self.files.contains_key(parent) {
                    Err(Errno::ENOTDIR)
                } else {
                    Err(Errno::ENOENT)
                }
            }
            None => Err(Errno::ENOENT),
        }
    }

    fn children(&self, dir: &str) -> Vec<String> {
        let prefix = format!("{dir}/");
        let direct = |p: &str| {
            p.strip_prefix(&prefix)
                .filter(|rest| !rest.contains('/'))
                .map(|rest| rest.to_string())
        };
        let mut out: Vec<String> = self
            .dirs
            .keys()
            .filter_map(|p| direct(p))
            .chain(self.files.keys().filter_map(|p| direct(p)))
            .collect();
        out.sort();
        out
    }
}

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Get(u8),
    Unlink(u8),
    Mkdir(u8),
    Rmdir(u8),
    Rename(u8, u8),
    Readdir(u8),
    Stat(u8),
}

/// Eight path slots: half files in nested dirs, half top-level.
fn path_for(slot: u8) -> String {
    match slot % 8 {
        0 => "/a".to_string(),
        1 => "/b".to_string(),
        2 => "/d1".to_string(),
        3 => "/d2".to_string(),
        4 => "/d1/x".to_string(),
        5 => "/d1/y".to_string(),
        6 => "/d2/z".to_string(),
        _ => "/d1/sub".to_string(),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(s, d)| Op::Put(s, d)),
        any::<u8>().prop_map(Op::Get),
        any::<u8>().prop_map(Op::Unlink),
        any::<u8>().prop_map(Op::Mkdir),
        any::<u8>().prop_map(Op::Rmdir),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Rename(a, b)),
        any::<u8>().prop_map(Op::Readdir),
        any::<u8>().prop_map(Op::Stat),
    ]
}

fn put(client: &hare_core::ClientLib, path: &str, data: &[u8]) -> Result<(), Errno> {
    let fd = client.open(
        path,
        OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC,
        Mode::default(),
    )?;
    let mut off = 0;
    while off < data.len() {
        off += client.write(fd, &data[off..])?;
    }
    client.close(fd)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, .. ProptestConfig::default()
    })]

    #[test]
    fn hare_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let inst = HareInstance::start(HareConfig::timeshare(2));
        let client = inst.new_client(0).unwrap();
        let mut model = Model::default();

        for op in &ops {
            match op {
                Op::Put(s, data) => {
                    let p = path_for(*s);
                    let real = put(&client, &p, data);
                    // Model: parent must exist; path must not be a dir.
                    let expect = match model.parent_ok(&p) {
                        Err(e) => Err(e),
                        Ok(()) if model.dirs.contains_key(&p) => Err(Errno::EISDIR),
                        Ok(()) => {
                            model.files.insert(p.clone(), data.clone());
                            Ok(())
                        }
                    };
                    prop_assert_eq!(real, expect, "put {}", p);
                }
                Op::Get(s) => {
                    let p = path_for(*s);
                    let real = fsapi::read_to_vec(&client, &p);
                    let expect = if model.dirs.contains_key(&p) {
                        Err(Errno::EISDIR)
                    } else if let Some(d) = model.files.get(&p) {
                        Ok(d.clone())
                    } else {
                        Err(model.parent_ok(&p).err().unwrap_or(Errno::ENOENT))
                    };
                    prop_assert_eq!(real, expect, "get {}", p);
                }
                Op::Unlink(s) => {
                    let p = path_for(*s);
                    let real = client.unlink(&p);
                    let expect = if model.dirs.contains_key(&p) {
                        Err(Errno::EISDIR)
                    } else if let Err(e) = model.parent_ok(&p) {
                        Err(e)
                    } else if model.files.remove(&p).is_some() {
                        Ok(())
                    } else {
                        Err(Errno::ENOENT)
                    };
                    prop_assert_eq!(real, expect, "unlink {}", p);
                }
                Op::Mkdir(s) => {
                    let p = path_for(*s);
                    let real = client.mkdir(&p, Mode::default());
                    let expect = if let Err(e) = model.parent_ok(&p) {
                        Err(e)
                    } else if model.dirs.contains_key(&p) || model.files.contains_key(&p) {
                        Err(Errno::EEXIST)
                    } else {
                        model.dirs.insert(p.clone(), ());
                        Ok(())
                    };
                    prop_assert_eq!(real, expect, "mkdir {}", p);
                }
                Op::Rmdir(s) => {
                    let p = path_for(*s);
                    let real = client.rmdir(&p);
                    let expect = if let Err(e) = model.parent_ok(&p) {
                        Err(e)
                    } else if model.files.contains_key(&p) {
                        Err(Errno::ENOTDIR)
                    } else if !model.dirs.contains_key(&p) {
                        Err(Errno::ENOENT)
                    } else if !model.children(&p).is_empty() {
                        Err(Errno::ENOTEMPTY)
                    } else {
                        model.dirs.remove(&p);
                        Ok(())
                    };
                    prop_assert_eq!(real, expect, "rmdir {}", p);
                }
                Op::Rename(a, b) => {
                    let (pa, pb) = (path_for(*a), path_for(*b));
                    let real = client.rename(&pa, &pb);
                    // Mirror the client's check order: old parent, new
                    // parent, source lookup, then target rules.
                    let expect = if pa == pb {
                        real // same-path rename is a no-op in the client
                    } else if pb.starts_with(&format!("{pa}/")) {
                        // Moving a directory (or anything) into its own
                        // subtree path prefix is rejected up front.
                        Err(Errno::EINVAL)
                    } else if let Err(e) = model.parent_ok(&pa) {
                        Err(e)
                    } else if let Err(e) = model.parent_ok(&pb) {
                        Err(e)
                    } else if model.dirs.contains_key(&pa) {
                        // Directory rename: only onto an absent target.
                        if model.dirs.contains_key(&pb) {
                            Err(Errno::EISDIR)
                        } else if model.files.contains_key(&pb) {
                            Err(Errno::ENOTDIR)
                        } else {
                            let moved: Vec<(String, Vec<u8>)> = model
                                .files
                                .iter()
                                .filter(|(k, _)| k.starts_with(&format!("{pa}/")))
                                .map(|(k, v)| (k.replacen(&pa, &pb, 1), v.clone()))
                                .collect();
                            model.files.retain(|k, _| !k.starts_with(&format!("{pa}/")));
                            let moved_dirs: Vec<String> = model
                                .dirs
                                .keys()
                                .filter(|k| k.starts_with(&format!("{pa}/")))
                                .map(|k| k.replacen(&pa, &pb, 1))
                                .collect();
                            model.dirs.retain(|k, _| !k.starts_with(&format!("{pa}/")));
                            model.dirs.remove(&pa);
                            model.dirs.insert(pb.clone(), ());
                            for d in moved_dirs {
                                model.dirs.insert(d, ());
                            }
                            for (k, v) in moved {
                                model.files.insert(k, v);
                            }
                            Ok(())
                        }
                    } else if let Some(data) = model.files.get(&pa).cloned() {
                        if model.dirs.contains_key(&pb) {
                            Err(Errno::EISDIR)
                        } else {
                            model.files.remove(&pa);
                            model.files.insert(pb.clone(), data);
                            Ok(())
                        }
                    } else {
                        Err(Errno::ENOENT)
                    };
                    prop_assert_eq!(real, expect, "rename {} {}", pa, pb);
                }
                Op::Readdir(s) => {
                    let p = path_for(*s);
                    let real = client.readdir(&p).map(|entries| {
                        let mut names: Vec<String> =
                            entries.into_iter().map(|e| e.name).collect();
                        names.sort();
                        names
                    });
                    let expect = if let Err(e) = model.parent_ok(&p) {
                        Err(e)
                    } else if model.files.contains_key(&p) {
                        Err(Errno::ENOTDIR)
                    } else if model.dirs.contains_key(&p) {
                        Ok(model.children(&p))
                    } else {
                        Err(Errno::ENOENT)
                    };
                    prop_assert_eq!(real, expect, "readdir {}", p);
                }
                Op::Stat(s) => {
                    let p = path_for(*s);
                    let real = client.stat(&p);
                    match (real, model.files.get(&p), model.dirs.contains_key(&p)) {
                        (Ok(st), Some(data), _) => {
                            prop_assert_eq!(st.size as usize, data.len(), "stat size {}", p);
                            prop_assert!(st.ftype.is_file());
                        }
                        (Ok(st), None, true) => prop_assert!(st.ftype.is_dir()),
                        (Err(Errno::ENOENT), None, false) | (Err(Errno::ENOTDIR), None, false) => {}
                        (r, f, d) => {
                            return Err(TestCaseError::fail(format!(
                                "stat {p}: got {r:?}, model file={} dir={d}",
                                f.is_some()
                            )))
                        }
                    }
                }
            }
        }
        drop(client);
        inst.shutdown();
    }

    /// A migration injected at an arbitrary point of an arbitrary trace
    /// is invisible: every operation's outcome (sizes, listings, error
    /// codes — everything except inode *placement*, which legitimately
    /// follows the shard) matches the unmigrated run, and the message
    /// overhead is bounded — the migration protocol itself plus at most a
    /// couple of extra exchanges per operation (one-bounce redirects and
    /// the dentry/inode split of pre-migration files), never a storm.
    #[test]
    fn migration_mid_trace_is_transparent_and_bounded(
        ops in prop::collection::vec(op_strategy(), 1..40),
        at in 0usize..40,
        to in 0u16..3,
    ) {
        let summarize = |client: &hare_core::ClientLib, op: &Op| -> String {
            match op {
                Op::Put(s, data) => format!("put {:?}", put(client, &path_for(*s), data)),
                Op::Get(s) => format!("get {:?}", fsapi::read_to_vec(client, &path_for(*s))),
                Op::Unlink(s) => format!("rm {:?}", client.unlink(&path_for(*s))),
                Op::Mkdir(s) => format!("mk {:?}", client.mkdir(&path_for(*s), Mode::default())),
                Op::Rmdir(s) => format!("rd {:?}", client.rmdir(&path_for(*s))),
                Op::Rename(a, b) => {
                    format!("mv {:?}", client.rename(&path_for(*a), &path_for(*b)))
                }
                Op::Readdir(s) => match client.readdir(&path_for(*s)) {
                    Ok(entries) => {
                        let mut names: Vec<String> =
                            entries.into_iter().map(|e| e.name).collect();
                        names.sort();
                        format!("ls {names:?}")
                    }
                    Err(e) => format!("ls {e:?}"),
                },
                Op::Stat(s) => match client.stat(&path_for(*s)) {
                    // Placement-independent fields only: the inode server
                    // legitimately changes for files created after the
                    // migration.
                    Ok(st) => format!("st {:?} {} {}", st.ftype, st.size, st.nlink),
                    Err(e) => format!("st {e:?}"),
                },
            }
        };
        let run = |migrate: bool| -> (Vec<String>, u64) {
            let inst = HareInstance::start(HareConfig::timeshare(3));
            let client = inst.new_client(0).unwrap();
            let k = at % ops.len();
            let mut outs = Vec::with_capacity(ops.len());
            for (i, op) in ops.iter().enumerate() {
                if migrate && i == k {
                    // Migrate whichever nested directories exist by now;
                    // a missing directory makes this a cheap no-op.
                    let _ = client.migrate_dir("/d1", to);
                    let _ = client.migrate_dir("/d2", (to + 1) % 3);
                }
                outs.push(summarize(&client, op));
            }
            let sends = inst.machine().msg_stats.sends();
            drop(client);
            inst.shutdown();
            (outs, sends)
        };
        let (base, base_sends) = run(false);
        let (migrated, mig_sends) = run(true);
        prop_assert_eq!(base, migrated, "a migrated trace diverged");
        prop_assert!(
            mig_sends <= base_sends + 24 + 4 * ops.len() as u64,
            "migration overhead unbounded: {} vs {} sends over {} ops",
            mig_sends,
            base_sends,
            ops.len()
        );
    }
}
