//! Paged `ListShard` and O(owned-shards) fan-out tests.
//!
//! PR 8's big-machine hot paths: a directory listing pages through
//! bounded `ListShard` exchanges (the cursor is a *name*, so it survives
//! concurrent mutation and shard migration), and every whole-directory
//! fan-out — readdir's sweep, rmdir's mark/commit rounds — visits the
//! directory's shard set, not every server on the machine. These tests
//! pin the exchange counts and the cursor semantics end to end.

use fsapi::{Errno, MkdirOpts, Mode, OpenFlags, ProcFs};
use hare_core::proto::{MarkResult, Reply, Request, ServerMsg, WireReply};
use hare_core::{HareConfig, HareInstance, ServerId};
use std::sync::Arc;

/// Sends one raw request to server `s` and waits for its reply, bypassing
/// the client library (for driving the pagination protocol by hand).
fn raw(inst: &Arc<HareInstance>, s: ServerId, req: Request) -> WireReply {
    let (tx, rx) = msg::channel(Arc::clone(&inst.machine().msg_stats));
    inst.servers()[s as usize]
        .tx
        .send(
            ServerMsg {
                req,
                reply: tx,
                span: None,
            },
            0,
            0,
        )
        .unwrap();
    rx.recv().unwrap().payload
}

/// The raw first-or-continuation page request.
fn list_req(dir: hare_core::InodeId, after: Option<&str>, max: u32) -> Request {
    Request::ListShard {
        dir,
        after: after.map(str::to_string),
        max,
    }
}

/// Boots an instance, creates the distributed directory `/big` with
/// `n` files `e000..`, and returns the instance.
fn boot_with_entries(cfg: HareConfig, n: usize) -> Arc<HareInstance> {
    let app_core = cfg.app_cores[0];
    let inst = HareInstance::start(cfg);
    let setup = inst.new_client(app_core).unwrap();
    setup
        .mkdir_opts("/big", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    for i in 0..n {
        let fd = setup
            .open(
                &format!("/big/e{i:03}"),
                OpenFlags::CREAT | OpenFlags::WRONLY,
                Mode::default(),
            )
            .unwrap();
        setup.close(fd).unwrap();
    }
    drop(setup);
    let _ = app_core;
    inst
}

/// Resolves `/big`'s inode through a throwaway client.
fn big_ino(inst: &Arc<HareInstance>) -> hare_core::InodeId {
    let core = inst.config().app_cores[0];
    let c = inst.new_client(core).unwrap();
    let st = c.stat("/big").unwrap();
    let ino = hare_core::InodeId {
        server: st.server,
        num: st.ino,
    };
    drop(c);
    ino
}

#[test]
fn paged_listing_is_complete_and_sorted() {
    // 100 entries over 4 shards with an 8-entry page: every shard needs
    // several continuation rounds, and the final listing must still be
    // exactly the created set, in name order.
    let mut cfg = HareConfig::timeshare(4);
    cfg.list_page_max = 8;
    let inst = boot_with_entries(cfg, 100);
    let c = inst.new_client(0).unwrap();
    let names: Vec<String> = c
        .readdir("/big")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    let expect: Vec<String> = (0..100).map(|i| format!("e{i:03}")).collect();
    assert_eq!(names, expect);
    drop(c);
    inst.shutdown();
}

#[test]
fn exact_page_boundary_ends_without_a_cursor() {
    // A page that consumes the shard exactly must not hand back a
    // continuation cursor (which would cost a pointless empty round).
    let inst = boot_with_entries(HareConfig::timeshare(1), 6);
    let dir = big_ino(&inst);
    match raw(&inst, 0, list_req(dir, None, 6)) {
        Ok(Reply::Shard { entries, next }) => {
            assert_eq!(entries.len(), 6);
            assert_eq!(next, None, "exact-boundary page must end the listing");
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    // One short of the boundary: a cursor, and a final 1-entry page.
    let next = match raw(&inst, 0, list_req(dir, None, 5)) {
        Ok(Reply::Shard { entries, next }) => {
            assert_eq!(entries.len(), 5);
            next.expect("truncated page must carry a cursor")
        }
        other => panic!("unexpected reply: {other:?}"),
    };
    match raw(&inst, 0, list_req(dir, Some(&next), 0)) {
        Ok(Reply::Shard { entries, next }) => {
            assert_eq!(entries.len(), 1);
            assert_eq!(entries[0].name, "e005");
            assert_eq!(next, None);
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    inst.shutdown();
}

#[test]
fn cursor_survives_mutation_between_pages() {
    // Entries created and removed between two pages: names alive across
    // the whole listing appear exactly once, regardless of which side of
    // the cursor the churn lands on.
    let inst = boot_with_entries(HareConfig::timeshare(1), 8);
    let dir = big_ino(&inst);
    let next = match raw(&inst, 0, list_req(dir, None, 4)) {
        Ok(Reply::Shard { entries, next }) => {
            assert_eq!(entries.len(), 4); // e000..e003
            next.unwrap()
        }
        other => panic!("unexpected reply: {other:?}"),
    };
    assert_eq!(next, "e003");

    // Mutate on both sides of the cursor before the continuation.
    let c = inst.new_client(0).unwrap();
    c.unlink("/big/e001").unwrap(); // behind the cursor (already listed)
    c.unlink("/big/e005").unwrap(); // ahead of the cursor (never listed)
    let fd = c
        .open(
            "/big/e0005x", // sorts behind the cursor: must NOT reappear
            OpenFlags::CREAT | OpenFlags::WRONLY,
            Mode::default(),
        )
        .unwrap();
    c.close(fd).unwrap();
    drop(c);

    match raw(&inst, 0, list_req(dir, Some(&next), 0)) {
        Ok(Reply::Shard { entries, next }) => {
            let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
            assert_eq!(names, vec!["e004", "e006", "e007"]);
            assert_eq!(next, None);
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    inst.shutdown();
}

#[test]
fn rmdir_mark_between_pages_parks_then_finishes_cleanly() {
    // Mid-pagination, the directory empties and an rmdir marks it. The
    // continuation request parks behind the mark (the chain-level EAGAIN
    // semantics, preserved across page boundaries) and, when the rmdir
    // aborts, completes with an empty final page — no orphan pages, no
    // spurious error.
    let inst = boot_with_entries(HareConfig::timeshare(1), 4);
    let dir = big_ino(&inst);
    let next = match raw(&inst, 0, list_req(dir, None, 2)) {
        Ok(Reply::Shard { next, .. }) => next.unwrap(),
        other => panic!("unexpected reply: {other:?}"),
    };

    // Empty the directory, then take the rmdir lock and mark it.
    let c = inst.new_client(0).unwrap();
    for i in 0..4 {
        c.unlink(&format!("/big/e{i:03}")).unwrap();
    }
    drop(c);
    assert!(matches!(
        raw(&inst, 0, Request::RmdirSerialize { dir }),
        Ok(Reply::RmdirLocked)
    ));
    assert!(matches!(
        raw(&inst, 0, Request::RmdirMark { dir }),
        Ok(Reply::RmdirMark(MarkResult::Marked))
    ));

    // The continuation parks: send it, then resolve the mark with an
    // abort; only then does its reply arrive.
    let (tx, rx) = msg::channel(Arc::clone(&inst.machine().msg_stats));
    inst.servers()[0]
        .tx
        .send(
            ServerMsg {
                req: list_req(dir, Some(&next), 0),
                reply: tx,
                span: None,
            },
            0,
            0,
        )
        .unwrap();
    assert!(matches!(
        raw(&inst, 0, Request::RmdirAbort { dir }),
        Ok(Reply::Unit)
    ));
    assert!(matches!(
        raw(&inst, 0, Request::RmdirRelease { dir }),
        Ok(Reply::Unit)
    ));
    match rx.recv().unwrap().payload {
        Ok(Reply::Shard { entries, next }) => {
            assert!(entries.is_empty());
            assert_eq!(next, None);
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    inst.shutdown();
}

#[test]
fn committed_rmdir_turns_stale_cursors_into_enoent() {
    // The commit case: a cursor held across the directory's removal must
    // answer ENOENT (the tombstone), never a phantom page.
    let inst = boot_with_entries(HareConfig::timeshare(1), 4);
    let dir = big_ino(&inst);
    let next = match raw(&inst, 0, list_req(dir, None, 2)) {
        Ok(Reply::Shard { next, .. }) => next.unwrap(),
        other => panic!("unexpected reply: {other:?}"),
    };
    let c = inst.new_client(0).unwrap();
    for i in 0..4 {
        c.unlink(&format!("/big/e{i:03}")).unwrap();
    }
    c.rmdir("/big").unwrap();
    drop(c);
    assert!(matches!(
        raw(&inst, 0, list_req(dir, Some(&next), 0)),
        Err(Errno::ENOENT)
    ));
    inst.shutdown();
}

#[test]
fn page_rounds_cost_exactly_one_exchange_each() {
    // Single server, 10 entries: resolution is one exchange, and the
    // listing itself is one exchange per page — ceil(10/4) = 3 pages at a
    // 4-entry bound, one page unbounded. Pinned sends (2 per exchange).
    let sends = |page: usize| {
        let mut cfg = HareConfig::timeshare(1);
        cfg.list_page_max = page;
        let inst = boot_with_entries(cfg, 10);
        let prober = inst.new_client(0).unwrap();
        let before = inst.machine().msg_stats.sends();
        assert_eq!(prober.readdir("/big").unwrap().len(), 10);
        let delta = inst.machine().msg_stats.sends() - before;
        drop(prober);
        inst.shutdown();
        delta
    };
    assert_eq!(sends(4096), 2 * (1 + 1), "one page: resolve + 1 exchange");
    assert_eq!(sends(4), 2 * (1 + 3), "three pages: resolve + 3 exchanges");
}

#[test]
fn four_shard_dir_costs_the_same_sends_at_8_and_64_servers() {
    // The acceptance criterion: a directory sharded 4 wide pays the same
    // distributed-readdir fan-out on an 8-server machine and a 64-server
    // machine — O(owned shards), not O(servers).
    let sends = |ncores: usize| {
        let mut cfg = HareConfig::timeshare(ncores);
        cfg.dir_shard_width = 4;
        let inst = boot_with_entries(cfg, 32);
        let prober = inst.new_client(0).unwrap();
        let before = inst.machine().msg_stats.sends();
        assert_eq!(prober.readdir("/big").unwrap().len(), 32);
        let delta = inst.machine().msg_stats.sends() - before;
        drop(prober);
        inst.shutdown();
        delta
    };
    let (at8, at64) = (sends(8), sends(64));
    assert_eq!(
        at8, at64,
        "readdir fan-out must not scale with machine size"
    );
    // And the absolute count is the resolve exchange plus one per shard.
    assert_eq!(at8, 2 * (1 + 4));
}

#[test]
fn narrow_width_confines_creation_listing_and_removal() {
    // End-to-end over a narrow shard set: clients that never exchanged
    // state agree on placement (creation, listing, unlink, rmdir), and
    // rmdir's mark/commit rounds over the shard set alone leave nothing
    // behind.
    let mut cfg = HareConfig::timeshare(8);
    cfg.dir_shard_width = 3;
    let inst = boot_with_entries(cfg, 40);
    let c = inst.new_client(0).unwrap();
    assert_eq!(c.readdir("/big").unwrap().len(), 40);
    for i in 0..40 {
        c.unlink(&format!("/big/e{i:03}")).unwrap();
    }
    c.rmdir("/big").unwrap();
    assert_eq!(c.stat("/big").unwrap_err(), Errno::ENOENT);
    drop(c);
    inst.shutdown();
}
