//! RPC-count regression tests built on the machine-wide `msg` send
//! counters: the coalesced lookup+open and the negative dentry cache exist
//! to remove whole round trips from the hot path, so these tests pin the
//! exact message counts and fail if a code change quietly re-adds one.
//!
//! Counting convention: every RPC is two message sends (request + reply);
//! none of the measured operations trigger invalidation sends.

use fsapi::{Errno, MkdirOpts, Mode, OpenFlags, ProcFs};
use hare_core::{HareConfig, HareInstance, Techniques};

/// Message sends for one cold-cache `open(O_RDONLY)` of `/d1/d2/f` on a
/// single-server machine (dentry shard and inode server always coincide).
fn open_existing_sends(techniques: Techniques) -> u64 {
    let mut cfg = HareConfig::timeshare(1);
    cfg.techniques = techniques;
    let inst = HareInstance::start(cfg);
    let setup = inst.new_client(0).unwrap();
    fsapi::mkdir_p(&setup, "/d1/d2", MkdirOpts::default()).unwrap();
    fsapi::write_file(&setup, "/d1/d2/f", b"payload").unwrap();
    drop(setup);

    // A fresh client: its directory cache is cold, so every pathname
    // component costs a real RPC.
    let prober = inst.new_client(0).unwrap();
    let before = inst.machine().msg_stats.sends();
    let fd = prober
        .open("/d1/d2/f", OpenFlags::RDONLY, Mode::default())
        .unwrap();
    let delta = inst.machine().msg_stats.sends() - before;
    prober.close(fd).unwrap();
    drop(prober);
    inst.shutdown();
    delta
}

#[test]
fn coalesced_open_costs_depth_plus_one_rpcs() {
    // /d1/d2/f has depth = 2 parent directories. Coalesced path: two
    // parent lookups + one LookupOpen = depth + 1 RPCs.
    assert_eq!(open_existing_sends(Techniques::default()), 2 * (2 + 1));
}

#[test]
fn uncoalesced_open_costs_depth_plus_two_rpcs() {
    // Toggle off: two parent lookups + Lookup + OpenInode = depth + 2.
    assert_eq!(
        open_existing_sends(Techniques::without("coalesced_open")),
        2 * (2 + 2)
    );
}

/// Message sends for the second of two identical failing lookups.
fn repeat_miss_sends(techniques: Techniques) -> u64 {
    let mut cfg = HareConfig::timeshare(1);
    cfg.techniques = techniques;
    let inst = HareInstance::start(cfg);
    let c = inst.new_client(0).unwrap();
    assert_eq!(c.stat("/absent").unwrap_err(), Errno::ENOENT);
    let before = inst.machine().msg_stats.sends();
    assert_eq!(c.stat("/absent").unwrap_err(), Errno::ENOENT);
    let delta = inst.machine().msg_stats.sends() - before;
    drop(c);
    inst.shutdown();
    delta
}

#[test]
fn negative_cache_elides_repeat_miss_rpcs() {
    assert_eq!(repeat_miss_sends(Techniques::default()), 0);
}

#[test]
fn without_negative_cache_repeat_miss_pays_one_rpc() {
    assert_eq!(repeat_miss_sends(Techniques::without("neg_dircache")), 2);
}

#[test]
fn excl_retry_loop_is_answered_locally() {
    // The lock-file idiom: open(O_CREAT|O_EXCL) retried while another
    // process holds the name. The first attempt pays the (elided-probe)
    // create attempt and caches the holder's entry; every further retry
    // must be answered from the dircache with zero RPCs.
    let inst = HareInstance::start(HareConfig::timeshare(1));
    let holder = inst.new_client(0).unwrap();
    fsapi::write_file(&holder, "/lock", b"held").unwrap();
    let waiter = inst.new_client(0).unwrap();
    let excl = OpenFlags::CREAT | OpenFlags::EXCL | OpenFlags::WRONLY;
    assert_eq!(waiter.open("/lock", excl, Mode::default()).unwrap_err(), Errno::EEXIST);
    let before = inst.machine().msg_stats.sends();
    for _ in 0..3 {
        assert_eq!(waiter.open("/lock", excl, Mode::default()).unwrap_err(), Errno::EEXIST);
    }
    assert_eq!(inst.machine().msg_stats.sends() - before, 0);
    // The holder releases the lock: the waiter's cached entry is
    // invalidated and the next attempt wins.
    holder.unlink("/lock").unwrap();
    let fd = waiter.open("/lock", excl, Mode::default()).unwrap();
    waiter.close(fd).unwrap();
    drop(waiter);
    drop(holder);
    inst.shutdown();
}

#[test]
fn o_creat_probe_is_free_after_first_miss() {
    // The mailbench/O_CREAT pattern: a failing open probe, then another.
    // With the negative cache the second probe's lookup is answered
    // locally; only the create-side RPCs remain.
    let inst = HareInstance::start(HareConfig::timeshare(1));
    let c = inst.new_client(0).unwrap();
    assert_eq!(
        c.open("/probe", OpenFlags::RDONLY, Mode::default())
            .unwrap_err(),
        Errno::ENOENT
    );
    let before = inst.machine().msg_stats.sends();
    assert_eq!(
        c.open("/probe", OpenFlags::RDONLY, Mode::default())
            .unwrap_err(),
        Errno::ENOENT
    );
    assert_eq!(inst.machine().msg_stats.sends() - before, 0);
    drop(c);
    inst.shutdown();
}
