//! RPC-count regression tests built on the machine-wide `msg` send
//! counters: the coalesced lookup+open and the negative dentry cache exist
//! to remove whole round trips from the hot path, so these tests pin the
//! exact message counts and fail if a code change quietly re-adds one.
//!
//! Counting convention: every RPC is two message sends (request + reply);
//! none of the measured operations trigger invalidation sends.

use fsapi::{Errno, MkdirOpts, Mode, OpenFlags, ProcFs};
use hare_core::{HareConfig, HareInstance, Techniques};

/// Message sends for one cold-cache `open(O_RDONLY)` of `/d1/d2/f` on a
/// single-server machine (dentry shard and inode server always coincide).
fn open_existing_sends(techniques: Techniques) -> u64 {
    let mut cfg = HareConfig::timeshare(1);
    cfg.techniques = techniques;
    let inst = HareInstance::start(cfg);
    let setup = inst.new_client(0).unwrap();
    fsapi::mkdir_p(&setup, "/d1/d2", MkdirOpts::default()).unwrap();
    fsapi::write_file(&setup, "/d1/d2/f", b"payload").unwrap();
    drop(setup);

    // A fresh client: its directory cache is cold, so every pathname
    // component costs a real RPC.
    let prober = inst.new_client(0).unwrap();
    let before = inst.machine().msg_stats.sends();
    let fd = prober
        .open("/d1/d2/f", OpenFlags::RDONLY, Mode::default())
        .unwrap();
    let delta = inst.machine().msg_stats.sends() - before;
    prober.close(fd).unwrap();
    drop(prober);
    inst.shutdown();
    delta
}

#[test]
fn fused_open_costs_one_end_to_end_exchange() {
    // /d1/d2/f: one LookupPath chain resolves both parents *and* the
    // file, and the final server (which also stores the inode — single
    // server) opens the descriptor in the same exchange: 1 exchange.
    assert_eq!(open_existing_sends(Techniques::default()), 2);
}

#[test]
fn unfused_chained_open_costs_two_exchanges() {
    // Fusion off restores the PR 3 protocol: one chained LookupPath
    // exchange for the parents, then one LookupOpen.
    assert_eq!(
        open_existing_sends(Techniques::without("fused_terminal")),
        2 * 2
    );
}

#[test]
fn unchained_coalesced_open_costs_depth_plus_one_rpcs() {
    // Chaining off restores the per-component walk: two parent lookups +
    // one LookupOpen = depth + 1 RPCs.
    assert_eq!(
        open_existing_sends(Techniques::without("chained_resolution")),
        2 * (2 + 1)
    );
}

#[test]
fn uncoalesced_open_costs_one_more_exchange() {
    // Coalescing off: the chained parent resolve (1 exchange) + Lookup +
    // OpenInode.
    assert_eq!(
        open_existing_sends(Techniques::without("coalesced_open")),
        2 * 3
    );
}

#[test]
fn unchained_uncoalesced_open_costs_depth_plus_two_rpcs() {
    // Both extensions off: the seed protocol, two parent lookups +
    // Lookup + OpenInode = depth + 2 RPCs.
    let mut t = Techniques::without("coalesced_open");
    t.chained_resolution = false;
    assert_eq!(open_existing_sends(t), 2 * (2 + 2));
}

/// Message sends for the second of two identical failing lookups.
fn repeat_miss_sends(techniques: Techniques) -> u64 {
    let mut cfg = HareConfig::timeshare(1);
    cfg.techniques = techniques;
    let inst = HareInstance::start(cfg);
    let c = inst.new_client(0).unwrap();
    assert_eq!(c.stat("/absent").unwrap_err(), Errno::ENOENT);
    let before = inst.machine().msg_stats.sends();
    assert_eq!(c.stat("/absent").unwrap_err(), Errno::ENOENT);
    let delta = inst.machine().msg_stats.sends() - before;
    drop(c);
    inst.shutdown();
    delta
}

#[test]
fn negative_cache_elides_repeat_miss_rpcs() {
    assert_eq!(repeat_miss_sends(Techniques::default()), 0);
}

#[test]
fn without_negative_cache_repeat_miss_pays_one_rpc() {
    assert_eq!(repeat_miss_sends(Techniques::without("neg_dircache")), 2);
}

#[test]
fn excl_retry_loop_is_answered_locally() {
    // The lock-file idiom: open(O_CREAT|O_EXCL) retried while another
    // process holds the name. The first attempt pays the (elided-probe)
    // create attempt and caches the holder's entry; every further retry
    // must be answered from the dircache with zero RPCs.
    let inst = HareInstance::start(HareConfig::timeshare(1));
    let holder = inst.new_client(0).unwrap();
    fsapi::write_file(&holder, "/lock", b"held").unwrap();
    let waiter = inst.new_client(0).unwrap();
    let excl = OpenFlags::CREAT | OpenFlags::EXCL | OpenFlags::WRONLY;
    assert_eq!(
        waiter.open("/lock", excl, Mode::default()).unwrap_err(),
        Errno::EEXIST
    );
    let before = inst.machine().msg_stats.sends();
    for _ in 0..3 {
        assert_eq!(
            waiter.open("/lock", excl, Mode::default()).unwrap_err(),
            Errno::EEXIST
        );
    }
    assert_eq!(inst.machine().msg_stats.sends() - before, 0);
    // The holder releases the lock: the waiter's cached entry is
    // invalidated and the next attempt wins.
    holder.unlink("/lock").unwrap();
    let fd = waiter.open("/lock", excl, Mode::default()).unwrap();
    waiter.close(fd).unwrap();
    drop(waiter);
    drop(holder);
    inst.shutdown();
}

/// Message sends for one cold-cache `stat` of `/d1/d2/f` on a
/// single-server machine (dentry shard and inode server always coincide).
fn stat_sends(techniques: Techniques) -> u64 {
    let mut cfg = HareConfig::timeshare(1);
    cfg.techniques = techniques;
    let inst = HareInstance::start(cfg);
    let setup = inst.new_client(0).unwrap();
    fsapi::mkdir_p(&setup, "/d1/d2", MkdirOpts::default()).unwrap();
    fsapi::write_file(&setup, "/d1/d2/f", b"payload").unwrap();
    drop(setup);

    let prober = inst.new_client(0).unwrap();
    let before = inst.machine().msg_stats.sends();
    let st = prober.stat("/d1/d2/f").unwrap();
    assert_eq!(st.size, 7);
    let delta = inst.machine().msg_stats.sends() - before;
    drop(prober);
    inst.shutdown();
    delta
}

#[test]
fn fused_stat_costs_one_end_to_end_exchange() {
    // One LookupPath chain resolves /d1/d2/f and the final server (also
    // the inode's — single server) answers the stat in the same exchange.
    assert_eq!(stat_sends(Techniques::default()), 2);
}

#[test]
fn unfused_chained_stat_costs_two_exchanges() {
    // Fusion off: one chained LookupPath exchange for the parents + one
    // LookupStat.
    assert_eq!(stat_sends(Techniques::without("fused_terminal")), 2 * 2);
}

#[test]
fn unchained_coalesced_stat_costs_depth_plus_one_rpcs() {
    // Chaining off: two parent lookups + one LookupStat = depth + 1.
    assert_eq!(
        stat_sends(Techniques::without("chained_resolution")),
        2 * (2 + 1)
    );
}

#[test]
fn uncoalesced_stat_costs_one_more_exchange() {
    // Coalescing off: chained parent resolve + Lookup + StatInode.
    assert_eq!(stat_sends(Techniques::without("coalesced_stat")), 2 * 3);
}

/// Message sends and batched-op count for one `rename("/src", "/dst")` on
/// a single-server machine (old and new shard always coincide).
fn rename_counts(techniques: Techniques) -> (u64, u64) {
    let mut cfg = HareConfig::timeshare(1);
    cfg.techniques = techniques;
    let inst = HareInstance::start(cfg);
    let setup = inst.new_client(0).unwrap();
    fsapi::write_file(&setup, "/src", b"x").unwrap();
    drop(setup);

    let c = inst.new_client(0).unwrap();
    let before = inst.machine().msg_stats.sends();
    let batched_before = inst.machine().msg_stats.batched_ops();
    c.rename("/src", "/dst").unwrap();
    let sends = inst.machine().msg_stats.sends() - before;
    let batched = inst.machine().msg_stats.batched_ops() - batched_before;
    assert!(c.stat("/dst").is_ok());
    drop(c);
    inst.shutdown();
    (sends, batched)
}

#[test]
fn batched_rename_pairs_add_map_with_rm_map() {
    // Lookup of the old name (1 RPC) + one batched AddMap+RmMap exchange:
    // 2 transport exchanges instead of 3 RPCs.
    let (sends, batched) = rename_counts(Techniques::default());
    assert_eq!(sends, 2 * 2);
    assert_eq!(batched, 2, "the AddMap+RmMap pair must travel batched");
}

#[test]
fn unbatched_rename_costs_three_rpcs() {
    let (sends, batched) = rename_counts(Techniques::without("batching"));
    assert_eq!(sends, 2 * 3);
    assert_eq!(batched, 0);
}

/// Message sends and batched-op count for one cold-cache `readdir("/")`
/// over a root-distributed N-server machine.
fn readdir_counts(techniques: Techniques, nservers: usize) -> (u64, u64, usize) {
    let mut cfg = HareConfig::timeshare(nservers);
    cfg.techniques = techniques;
    let inst = HareInstance::start(cfg);
    let setup = inst.new_client(0).unwrap();
    for i in 0..8 {
        fsapi::write_file(&setup, &format!("/f{i}"), b"x").unwrap();
    }
    drop(setup);

    let c = inst.new_client(0).unwrap();
    let before = inst.machine().msg_stats.sends();
    let batched_before = inst.machine().msg_stats.batched_ops();
    let entries = c.readdir("/").unwrap();
    let sends = inst.machine().msg_stats.sends() - before;
    let batched = inst.machine().msg_stats.batched_ops() - batched_before;
    drop(c);
    inst.shutdown();
    (sends, batched, entries.len())
}

#[test]
fn batched_readdir_costs_one_exchange_per_server() {
    // Root is distributed over N = 4 servers: the fan-out is one batched
    // transport exchange per server (2 sends each).
    let (sends, batched, n) = readdir_counts(Techniques::default(), 4);
    assert_eq!(n, 8);
    assert_eq!(sends, 2 * 4);
    assert_eq!(batched, 4, "each shard list must travel batched");
}

#[test]
fn unbatched_readdir_costs_one_rpc_per_server() {
    // Toggle off: N independent ListShard RPCs (same wire count, no batch
    // envelopes).
    let (sends, batched, n) = readdir_counts(Techniques::without("batching"), 4);
    assert_eq!(n, 8);
    assert_eq!(sends, 2 * 4);
    assert_eq!(batched, 0);
}

#[test]
fn batched_readdir_plus_groups_stats_by_server() {
    // The ls -l pattern over a distributed directory: per-entry stats must
    // collapse to at most one exchange per server instead of one RPC per
    // entry.
    let nservers = 4u64;
    let nfiles = 16u64;
    let inst = HareInstance::start(HareConfig::timeshare(nservers as usize));
    let setup = inst.new_client(0).unwrap();
    setup
        .mkdir_opts("/big", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    for i in 0..nfiles {
        fsapi::write_file(&setup, &format!("/big/f{i}"), b"x").unwrap();
    }
    drop(setup);

    let c = inst.new_client(0).unwrap();
    // Warm the path to /big so only the fan-out is measured.
    c.stat("/big").unwrap();
    let before = inst.machine().msg_stats.sends();
    let listed = c.readdir_plus("/big").unwrap();
    let sends = inst.machine().msg_stats.sends() - before;
    assert_eq!(listed.len(), nfiles as usize);
    // N ListShard exchanges + at most N stat exchanges — far below the
    // N + nfiles RPCs of the unbatched path.
    assert!(
        sends <= 2 * (2 * nservers),
        "batched ls -l cost {sends} sends, expected <= {}",
        2 * (2 * nservers)
    );
    drop(c);
    inst.shutdown();
}

#[test]
fn o_creat_probe_is_free_after_first_miss() {
    // The mailbench/O_CREAT pattern: a failing open probe, then another.
    // With the negative cache the second probe's lookup is answered
    // locally; only the create-side RPCs remain.
    let inst = HareInstance::start(HareConfig::timeshare(1));
    let c = inst.new_client(0).unwrap();
    assert_eq!(
        c.open("/probe", OpenFlags::RDONLY, Mode::default())
            .unwrap_err(),
        Errno::ENOENT
    );
    let before = inst.machine().msg_stats.sends();
    assert_eq!(
        c.open("/probe", OpenFlags::RDONLY, Mode::default())
            .unwrap_err(),
        Errno::ENOENT
    );
    assert_eq!(inst.machine().msg_stats.sends() - before, 0);
    drop(c);
    inst.shutdown();
}

#[test]
fn fsync_flushes_buffered_sizes_as_one_grouped_exchange() {
    // Write-behind SetSize batching: write three files (descriptors kept
    // open), then fsync. The first fsync publishes every buffered size in
    // one grouped exchange; the later fsyncs find their sizes already
    // published and cost zero RPCs.
    let inst = HareInstance::start(HareConfig::timeshare(1));
    let c = inst.new_client(0).unwrap();
    let mut fds = Vec::new();
    for i in 0..3 {
        let fd = c
            .open(
                &format!("/wb{i}"),
                OpenFlags::CREAT | OpenFlags::WRONLY,
                Mode::default(),
            )
            .unwrap();
        assert_eq!(c.write(fd, b"payload").unwrap(), 7);
        fds.push(fd);
    }
    let before = inst.machine().msg_stats.sends();
    let batched_before = inst.machine().msg_stats.batched_ops();
    c.fsync(fds[0]).unwrap();
    // One transport exchange (2 sends) carrying all three SetSizes.
    assert_eq!(inst.machine().msg_stats.sends() - before, 2);
    assert_eq!(inst.machine().msg_stats.batched_ops() - batched_before, 3);
    // The other descriptors' sizes are already published.
    let before = inst.machine().msg_stats.sends();
    c.fsync(fds[1]).unwrap();
    c.fsync(fds[2]).unwrap();
    assert_eq!(inst.machine().msg_stats.sends() - before, 0);
    // And the published sizes are authoritative: a fresh client stats the
    // files without the writers closing.
    let other = inst.new_client(0).unwrap();
    assert_eq!(other.stat("/wb1").unwrap().size, 7);
    drop(other);
    for fd in fds {
        c.close(fd).unwrap();
    }
    drop(c);
    inst.shutdown();
}

#[test]
fn unregister_teardown_is_one_grouped_exchange_per_server() {
    // Client teardown fans Unregister out through the batch layer: one
    // exchange per server (overlapped), not N sequential round trips.
    let nservers = 4u64;
    let inst = HareInstance::start(HareConfig::timeshare(nservers as usize));
    let c = inst.new_client(0).unwrap();
    let before = inst.machine().msg_stats.sends();
    let batched_before = inst.machine().msg_stats.batched_ops();
    drop(c); // shutdown: no open fds, just the Unregister fan-out
    assert_eq!(inst.machine().msg_stats.sends() - before, 2 * nservers);
    assert_eq!(
        inst.machine().msg_stats.batched_ops() - batched_before,
        nservers
    );
    inst.shutdown();
}

#[test]
fn fsync_size_flush_never_regresses_a_larger_view_of_the_same_file() {
    // Two descriptors of one file with different buffered views: the
    // flush publishes one SetSize per inode — the largest view — so the
    // stale smaller view can never overwrite the larger one.
    let inst = HareInstance::start(HareConfig::timeshare(1));
    let c = inst.new_client(0).unwrap();
    let a = c
        .open(
            "/same",
            OpenFlags::CREAT | OpenFlags::WRONLY,
            Mode::default(),
        )
        .unwrap();
    assert_eq!(c.write(a, b"0123456789").unwrap(), 10); // view: 10 bytes
    let b = c.open("/same", OpenFlags::WRONLY, Mode::default()).unwrap();
    assert_eq!(c.write(b, b"xyz").unwrap(), 3); // stale view: 3 bytes
    c.fsync(a).unwrap();
    let other = inst.new_client(0).unwrap();
    assert_eq!(
        other.stat("/same").unwrap().size,
        10,
        "the larger buffered view must win the per-inode flush"
    );
    // Closing the stale descriptor must not regress the published size
    // either: close only publishes a *growing* view.
    c.close(a).unwrap();
    c.close(b).unwrap();
    assert_eq!(
        other.stat("/same").unwrap().size,
        10,
        "closing a stale smaller view must not shrink the file"
    );
    drop(other);
    drop(c);
    inst.shutdown();
}
