//! End-to-end tests of the Hare client library against a running instance:
//! multiple client libraries on different cores, real server threads, real
//! non-coherent buffer cache.

use fsapi::{read_to_vec, write_file, Errno, FileType, MkdirOpts, Mode, OpenFlags, ProcFs, Whence};
use hare_core::{HareConfig, HareInstance};

fn boot(ncores: usize) -> std::sync::Arc<HareInstance> {
    HareInstance::start(HareConfig::timeshare(ncores))
}

#[test]
fn write_then_read_across_cores() {
    let inst = boot(4);
    let c0 = inst.new_client(0).unwrap();
    let c2 = inst.new_client(2).unwrap();

    // Core 0 writes and closes (write-back); core 2 opens (invalidate) and
    // reads: close-to-open consistency end to end.
    let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    write_file(&c0, "/big", &data).unwrap();
    let got = read_to_vec(&c2, "/big").unwrap();
    assert_eq!(got, data);
}

#[test]
fn second_writer_update_visible_after_reopen() {
    let inst = boot(2);
    let a = inst.new_client(0).unwrap();
    let b = inst.new_client(1).unwrap();

    write_file(&a, "/f", b"version-1").unwrap();
    assert_eq!(read_to_vec(&b, "/f").unwrap(), b"version-1");
    write_file(&b, "/f", b"version-2").unwrap();
    assert_eq!(read_to_vec(&a, "/f").unwrap(), b"version-2");
}

#[test]
fn unlinked_file_readable_through_open_fd() {
    let inst = boot(2);
    let a = inst.new_client(0).unwrap();
    let b = inst.new_client(1).unwrap();

    write_file(&a, "/doomed", b"still here").unwrap();
    let fd = a
        .open("/doomed", OpenFlags::RDONLY, Mode::default())
        .unwrap();
    // Another process unlinks it (the compilation idiom, paper §2.2/§3.4).
    b.unlink("/doomed").unwrap();
    assert_eq!(b.stat("/doomed").unwrap_err(), Errno::ENOENT);
    // The original fd still reads the data.
    let mut buf = [0u8; 10];
    assert_eq!(a.read(fd, &mut buf).unwrap(), 10);
    assert_eq!(&buf, b"still here");
    a.close(fd).unwrap();
    // Now the inode is gone for good: a fresh open fails.
    assert_eq!(
        a.open("/doomed", OpenFlags::RDONLY, Mode::default())
            .unwrap_err(),
        Errno::ENOENT
    );
}

#[test]
fn distributed_directory_entries_visible_everywhere() {
    let inst = boot(4);
    let clients: Vec<_> = (0..4).map(|i| inst.new_client(i).unwrap()).collect();
    clients[0]
        .mkdir_opts("/shared", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();

    // Every client creates files in the same directory concurrently.
    for (i, c) in clients.iter().enumerate() {
        for j in 0..8 {
            write_file(c, &format!("/shared/c{i}_f{j}"), b"x").unwrap();
        }
    }
    // readdir (directory broadcast) sees all 32 entries from any client.
    let entries = clients[3].readdir("/shared").unwrap();
    assert_eq!(entries.len(), 32);
    // Entries are spread over multiple servers (hash sharding).
    let servers: std::collections::HashSet<u16> = entries.iter().map(|e| e.server).collect();
    assert!(
        servers.len() > 1,
        "hashing should spread inodes/dentries over servers: {servers:?}"
    );
}

#[test]
fn centralized_directory_works_and_lists() {
    let inst = boot(4);
    let c = inst.new_client(1).unwrap();
    c.mkdir_opts("/central", Mode::default(), MkdirOpts::CENTRALIZED)
        .unwrap();
    for j in 0..10 {
        write_file(&c, &format!("/central/f{j}"), b"y").unwrap();
    }
    assert_eq!(c.readdir("/central").unwrap().len(), 10);
    // stat reports a directory.
    assert_eq!(c.stat("/central").unwrap().ftype, FileType::Directory);
}

#[test]
fn rename_within_and_across_directories() {
    let inst = boot(4);
    let a = inst.new_client(0).unwrap();
    let b = inst.new_client(3).unwrap();
    a.mkdir_opts("/src", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    a.mkdir_opts("/dst", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    write_file(&a, "/src/one", b"payload").unwrap();

    a.rename("/src/one", "/dst/two").unwrap();
    assert_eq!(a.stat("/src/one").unwrap_err(), Errno::ENOENT);
    assert_eq!(read_to_vec(&b, "/dst/two").unwrap(), b"payload");

    // Rename over an existing file replaces it.
    write_file(&b, "/dst/three", b"old").unwrap();
    b.rename("/dst/two", "/dst/three").unwrap();
    assert_eq!(read_to_vec(&a, "/dst/three").unwrap(), b"payload");
    assert_eq!(a.readdir("/dst").unwrap().len(), 1);
}

#[test]
fn rename_is_noop_on_same_path() {
    let inst = boot(2);
    let a = inst.new_client(0).unwrap();
    write_file(&a, "/same", b"z").unwrap();
    a.rename("/same", "/same").unwrap();
    assert_eq!(read_to_vec(&a, "/same").unwrap(), b"z");
}

#[test]
fn rmdir_distributed_empty_and_nonempty() {
    let inst = boot(4);
    let c = inst.new_client(0).unwrap();
    c.mkdir_opts("/d", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    write_file(&c, "/d/file", b"k").unwrap();

    // Non-empty: the three-phase protocol aborts with ENOTEMPTY.
    assert_eq!(c.rmdir("/d").unwrap_err(), Errno::ENOTEMPTY);
    // Still usable after the abort.
    assert_eq!(c.readdir("/d").unwrap().len(), 1);

    c.unlink("/d/file").unwrap();
    c.rmdir("/d").unwrap();
    assert_eq!(c.stat("/d").unwrap_err(), Errno::ENOENT);
    // Creating in a removed directory fails.
    assert_eq!(
        c.open(
            "/d/x",
            OpenFlags::CREAT | OpenFlags::WRONLY,
            Mode::default()
        )
        .unwrap_err(),
        Errno::ENOENT
    );
    // And the name can be reused.
    c.mkdir_opts("/d", Mode::default(), MkdirOpts::CENTRALIZED)
        .unwrap();
    assert_eq!(c.readdir("/d").unwrap().len(), 0);
}

#[test]
fn rmdir_centralized() {
    let inst = boot(2);
    let c = inst.new_client(0).unwrap();
    c.mkdir_opts("/cd", Mode::default(), MkdirOpts::CENTRALIZED)
        .unwrap();
    write_file(&c, "/cd/f", b"1").unwrap();
    assert_eq!(c.rmdir("/cd").unwrap_err(), Errno::ENOTEMPTY);
    c.unlink("/cd/f").unwrap();
    c.rmdir("/cd").unwrap();
    assert_eq!(c.readdir("/cd").unwrap_err(), Errno::ENOENT);
}

#[test]
fn deep_paths_and_dotdot() {
    let inst = boot(2);
    let c = inst.new_client(0).unwrap();
    fsapi::mkdir_p(&c, "/a/b/c/d", MkdirOpts::default()).unwrap();
    write_file(&c, "/a/b/c/d/leaf", b"deep").unwrap();
    assert_eq!(read_to_vec(&c, "/a/b/../b/c/./d/leaf").unwrap(), b"deep");
    assert_eq!(c.stat("/a/b/c").unwrap().ftype, FileType::Directory);
}

#[test]
fn lseek_and_sparse_reads() {
    let inst = boot(2);
    let c = inst.new_client(0).unwrap();
    let fd = c
        .open(
            "/sparse",
            OpenFlags::RDWR | OpenFlags::CREAT,
            Mode::default(),
        )
        .unwrap();
    // Write at 10000 leaving a hole in block 0/1.
    c.lseek(fd, 10_000, Whence::Set).unwrap();
    c.write(fd, b"end").unwrap();
    assert_eq!(c.lseek(fd, 0, Whence::End).unwrap(), 10_003);
    c.lseek(fd, 0, Whence::Set).unwrap();
    let mut buf = [7u8; 16];
    c.read(fd, &mut buf).unwrap();
    assert_eq!(buf, [0u8; 16], "holes read as zeros");
    c.lseek(fd, -3, Whence::End).unwrap();
    let mut tail = [0u8; 3];
    assert_eq!(c.read(fd, &mut tail).unwrap(), 3);
    assert_eq!(&tail, b"end");
    c.close(fd).unwrap();
}

#[test]
fn o_excl_and_o_trunc() {
    let inst = boot(2);
    let c = inst.new_client(0).unwrap();
    write_file(&c, "/f", b"0123456789").unwrap();
    assert_eq!(
        c.open(
            "/f",
            OpenFlags::CREAT | OpenFlags::EXCL | OpenFlags::WRONLY,
            Mode::default()
        )
        .unwrap_err(),
        Errno::EEXIST
    );
    let fd = c
        .open("/f", OpenFlags::WRONLY | OpenFlags::TRUNC, Mode::default())
        .unwrap();
    c.close(fd).unwrap();
    assert_eq!(c.stat("/f").unwrap().size, 0);
}

#[test]
fn append_mode() {
    let inst = boot(2);
    let c = inst.new_client(0).unwrap();
    write_file(&c, "/log", b"one\n").unwrap();
    let fd = c
        .open(
            "/log",
            OpenFlags::WRONLY | OpenFlags::APPEND,
            Mode::default(),
        )
        .unwrap();
    c.write(fd, b"two\n").unwrap();
    c.close(fd).unwrap();
    assert_eq!(read_to_vec(&c, "/log").unwrap(), b"one\ntwo\n");
}

#[test]
fn dup_shares_offset_via_server() {
    let inst = boot(2);
    let c = inst.new_client(0).unwrap();
    write_file(&c, "/shared-off", b"abcdefgh").unwrap();
    let fd1 = c
        .open("/shared-off", OpenFlags::RDONLY, Mode::default())
        .unwrap();
    let fd2 = c.dup(fd1).unwrap();
    let mut b1 = [0u8; 3];
    let mut b2 = [0u8; 3];
    c.read(fd1, &mut b1).unwrap();
    c.read(fd2, &mut b2).unwrap();
    assert_eq!(&b1, b"abc");
    assert_eq!(&b2, b"def", "dup'd descriptors share one offset");
    c.close(fd1).unwrap();
    c.close(fd2).unwrap();
}

#[test]
fn pipes_block_and_deliver_across_processes() {
    let inst = boot(2);
    let a = std::sync::Arc::new(inst.new_client(0).unwrap());
    let (r, w) = a.pipe().unwrap();

    // Reader thread (same client lib would self-deadlock on state lock?
    // no: pipe ops drop the lock before the RPC). Simulate a second process
    // sharing the pipe via export/import.
    let exports = a.export_fds().unwrap();
    let b = inst.new_client(1).unwrap();
    b.import_fds(&exports);

    let t = std::thread::spawn(move || {
        let mut buf = [0u8; 5];
        let n = b.read(fsapi::Fd(r.0), &mut buf).unwrap();
        (n, buf)
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    a.write(w, b"ping!").unwrap();
    let (n, buf) = t.join().unwrap();
    assert_eq!(n, 5);
    assert_eq!(&buf, b"ping!");

    // Close both write ends → EOF at the reader.
    a.close(w).unwrap();
    a.close(r).unwrap();
}

#[test]
fn ftruncate_shrinks_and_grows() {
    let inst = boot(2);
    let c = inst.new_client(0).unwrap();
    write_file(&c, "/t", &[9u8; 9000]).unwrap();
    let fd = c.open("/t", OpenFlags::RDWR, Mode::default()).unwrap();
    c.ftruncate(fd, 100).unwrap();
    assert_eq!(c.fstat(fd).unwrap().size, 100);
    c.ftruncate(fd, 5000).unwrap();
    assert_eq!(c.fstat(fd).unwrap().size, 5000);
    c.close(fd).unwrap();
    let data = read_to_vec(&c, "/t").unwrap();
    assert_eq!(data.len(), 5000);
    assert!(data[..100].iter().all(|&b| b == 9));
    assert!(data[100..].iter().all(|&b| b == 0), "grown region is zeros");
}

#[test]
fn fsync_publishes_without_close() {
    let inst = boot(2);
    let a = inst.new_client(0).unwrap();
    let b = inst.new_client(1).unwrap();
    let fd = a
        .open(
            "/pub",
            OpenFlags::WRONLY | OpenFlags::CREAT,
            Mode::default(),
        )
        .unwrap();
    a.write(fd, b"durable").unwrap();
    a.fsync(fd).unwrap();
    // Reader on another core sees the data after open (fd still open at
    // the writer!).
    assert_eq!(read_to_vec(&b, "/pub").unwrap(), b"durable");
    a.close(fd).unwrap();
}

#[test]
fn errors_match_posix() {
    let inst = boot(2);
    let c = inst.new_client(0).unwrap();
    assert_eq!(c.stat("/nope").unwrap_err(), Errno::ENOENT);
    assert_eq!(
        c.open("/nope", OpenFlags::RDONLY, Mode::default())
            .unwrap_err(),
        Errno::ENOENT
    );
    write_file(&c, "/file", b"x").unwrap();
    assert_eq!(c.readdir("/file").unwrap_err(), Errno::ENOTDIR);
    assert_eq!(
        c.open("/file/sub", OpenFlags::RDONLY, Mode::default())
            .unwrap_err(),
        Errno::ENOTDIR
    );
    assert_eq!(c.rmdir("/file").unwrap_err(), Errno::ENOTDIR);
    assert_eq!(c.unlink("/missing").unwrap_err(), Errno::ENOENT);
    c.mkdir("/dir", Mode::default()).unwrap();
    assert_eq!(c.unlink("/dir").unwrap_err(), Errno::EISDIR);
    assert_eq!(
        c.open("/dir", OpenFlags::RDONLY, Mode::default())
            .unwrap_err(),
        Errno::EISDIR
    );
    assert_eq!(c.mkdir("/dir", Mode::default()).unwrap_err(), Errno::EEXIST);
    let fd = c.open("/file", OpenFlags::RDONLY, Mode::default()).unwrap();
    assert_eq!(c.write(fd, b"no").unwrap_err(), Errno::EBADF);
    c.close(fd).unwrap();
    assert_eq!(c.close(fd).unwrap_err(), Errno::EBADF);
}

#[test]
fn concurrent_creates_in_one_distributed_directory() {
    let inst = boot(4);
    let insts = std::sync::Arc::new(inst);
    let c0 = insts.new_client(0).unwrap();
    c0.mkdir_opts("/par", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    drop(c0);

    let mut handles = Vec::new();
    for core in 0..4usize {
        let inst = std::sync::Arc::clone(&insts);
        handles.push(std::thread::spawn(move || {
            let c = inst.new_client(core).unwrap();
            for j in 0..25 {
                write_file(&c, &format!("/par/core{core}_{j}"), b"v").unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let c = insts.new_client(0).unwrap();
    assert_eq!(c.readdir("/par").unwrap().len(), 100);
}

#[test]
fn concurrent_rmdir_and_create_race_is_safe() {
    // The race the three-phase protocol exists for: one process rmdirs
    // while another creates a file in the same directory. Either the
    // create wins (rmdir → ENOTEMPTY) or the rmdir wins (create → ENOENT);
    // never both, never a hang.
    for round in 0..8 {
        let inst = boot(4);
        let setup = inst.new_client(0).unwrap();
        setup
            .mkdir_opts("/race", Mode::default(), MkdirOpts::DISTRIBUTED)
            .unwrap();
        drop(setup);
        let inst = std::sync::Arc::new(inst);

        let i1 = std::sync::Arc::clone(&inst);
        let creator = std::thread::spawn(move || {
            let c = i1.new_client(1).unwrap();
            c.open(
                &format!("/race/f{round}"),
                OpenFlags::CREAT | OpenFlags::WRONLY,
                Mode::default(),
            )
            .map(|fd| c.close(fd).unwrap())
        });
        let i2 = std::sync::Arc::clone(&inst);
        let remover = std::thread::spawn(move || {
            let c = i2.new_client(2).unwrap();
            c.rmdir("/race")
        });

        let created = creator.join().unwrap();
        let removed = remover.join().unwrap();
        let c = inst.new_client(3).unwrap();
        match (created.is_ok(), removed.is_ok()) {
            (true, true) => panic!("both create and rmdir succeeded"),
            (true, false) => {
                assert_eq!(c.readdir("/race").unwrap().len(), 1);
            }
            (false, true) => {
                assert_eq!(c.readdir("/race").unwrap_err(), Errno::ENOENT);
            }
            (false, false) => {
                // Creator lost to e.g. a concurrent mark, remover saw
                // non-empty: directory must still exist and be empty.
                assert_eq!(c.readdir("/race").unwrap().len(), 0);
            }
        }
    }
}

#[test]
fn negative_dentry_invalidated_by_racing_create() {
    let inst = boot(2);
    let a = inst.new_client(0).unwrap();
    let b = inst.new_client(1).unwrap();
    // b probes a missing name twice: the second miss is served from the
    // negative cache without an RPC.
    assert_eq!(b.stat("/later").unwrap_err(), Errno::ENOENT);
    assert_eq!(b.stat("/later").unwrap_err(), Errno::ENOENT);
    // a creates the name: the server invalidates b's negative entry, so b
    // must observe the file on its next resolution.
    write_file(&a, "/later", b"now you see me").unwrap();
    assert_eq!(read_to_vec(&b, "/later").unwrap(), b"now you see me");
}

#[test]
fn negative_dentry_on_intermediate_component() {
    let inst = boot(2);
    let a = inst.new_client(0).unwrap();
    let b = inst.new_client(1).unwrap();
    // The whole parent chain is missing; b caches the first component's
    // absence.
    assert_eq!(b.stat("/dir/leaf").unwrap_err(), Errno::ENOENT);
    fsapi::mkdir_p(&a, "/dir", MkdirOpts::default()).unwrap();
    write_file(&a, "/dir/leaf", b"x").unwrap();
    assert_eq!(read_to_vec(&b, "/dir/leaf").unwrap(), b"x");
}

#[test]
fn open_existing_works_with_coalescing_disabled() {
    let mut cfg = HareConfig::timeshare(4);
    cfg.techniques = hare_core::Techniques::without("coalesced_open");
    let inst = HareInstance::start(cfg);
    let a = inst.new_client(0).unwrap();
    let b = inst.new_client(2).unwrap();
    write_file(&a, "/plain", b"two-rpc path").unwrap();
    assert_eq!(read_to_vec(&b, "/plain").unwrap(), b"two-rpc path");
}

#[test]
fn dircache_invalidation_prevents_stale_resolution() {
    let inst = boot(2);
    let a = inst.new_client(0).unwrap();
    let b = inst.new_client(1).unwrap();
    write_file(&a, "/target", b"v1").unwrap();
    // b caches the lookup.
    assert_eq!(read_to_vec(&b, "/target").unwrap(), b"v1");
    // a unlinks and recreates: a *different* inode now holds the name.
    a.unlink("/target").unwrap();
    write_file(&a, "/target", b"v2").unwrap();
    // b must observe the invalidation and re-resolve.
    assert_eq!(read_to_vec(&b, "/target").unwrap(), b"v2");
}
