//! Exchange-count and protocol tests for server-side chained path
//! resolution (`LookupPath` forwarding).
//!
//! Counting convention: `MsgStats::sends()` counts every message — the
//! client's request, each server-to-server forward, and the final reply.
//! A chained resolution of p components spread over r *runs* of
//! co-located components therefore costs r + 1 messages (one client send,
//! r - 1 forwards, one reply), versus 2p messages for the per-component
//! walk. The expected counts below are computed from the actual shard
//! placement via the exported routing function, so the tests hold for any
//! hash layout.

use fsapi::{Errno, MkdirOpts, Mode, ProcFs};
use hare_core::proto::{Reply, Request, ServerMsg};
use hare_core::{dentry_shard, HareConfig, HareInstance, InodeId, Techniques};
use std::sync::Arc;

/// Creates a chain of `depth` *distributed* directories under `/`, with a
/// regular file `f` in the deepest one, and returns the shard server of
/// each directory component plus the deep file's path.
///
/// Component names are free-form (`c0`, `c1`, …) unless `want_shards`
/// pins, per level, the server the component's dentry must hash to (names
/// are then brute-forced against the exported routing function).
fn build_tree(
    inst: &Arc<HareInstance>,
    depth: usize,
    want_shards: Option<&[u16]>,
) -> (Vec<u16>, String) {
    let nservers = inst.servers().len();
    let setup = inst.new_client(0).unwrap();
    let mut path = String::new();
    let mut parent = InodeId::ROOT;
    let mut shards = Vec::new();
    for level in 0..depth {
        let name = match want_shards {
            Some(w) => (0..)
                .map(|i| format!("c{level}x{i}"))
                .find(|n| dentry_shard(parent, true, n, nservers) == w[level])
                .unwrap(),
            None => format!("c{level}"),
        };
        shards.push(dentry_shard(parent, true, &name, nservers));
        path = format!("{path}/{name}");
        setup
            .mkdir_opts(&path, Mode::default(), MkdirOpts::DISTRIBUTED)
            .unwrap();
        let st = setup.stat(&path).unwrap();
        parent = InodeId {
            server: st.server,
            num: st.ino,
        };
    }
    let file = format!("{path}/f");
    fsapi::write_file(&setup, &file, b"x").unwrap();
    drop(setup);
    (shards, file)
}

/// Messages for one cold-cache `stat` of the deep file: the parent
/// resolution (chained or per-component) plus the final-component
/// `LookupStat` exchange.
fn cold_stat_sends(inst: &Arc<HareInstance>, file: &str) -> u64 {
    let prober = inst.new_client(0).unwrap();
    let before = inst.machine().msg_stats.sends();
    let st = prober.stat(file).unwrap();
    assert_eq!(st.size, 1);
    let delta = inst.machine().msg_stats.sends() - before;
    drop(prober);
    delta
}

/// Number of runs of consecutive equal shards (the chain's hop count + 1).
fn runs(shards: &[u16]) -> u64 {
    if shards.is_empty() {
        return 0;
    }
    1 + shards.windows(2).filter(|w| w[0] != w[1]).count() as u64
}

/// The expected message count for a cold stat of a file under `shards`'
/// directory chain.
fn expected_sends(shards: &[u16], chained: bool) -> u64 {
    let p = shards.len() as u64;
    let resolve = if p == 0 {
        0
    } else if chained && p >= 2 {
        // One client request, runs-1 forwards, one reply.
        runs(shards) + 1
    } else {
        // Per-component round trips (a single component never chains).
        2 * p
    };
    resolve + 2 // the final component's LookupStat round trip
}

#[test]
fn chained_exchange_counts_match_shard_runs_across_depths_and_servers() {
    // The satellite matrix: depths 1/4/8 across 1/2/8 servers, both
    // toggle settings. Depth counts the full path components; the file is
    // the last one, so `depth - 1` directories precede it.
    for &nservers in &[1usize, 2, 8] {
        for &depth in &[1usize, 4, 8] {
            for &chained in &[true, false] {
                let mut cfg = HareConfig::timeshare(nservers);
                cfg.techniques = if chained {
                    Techniques::default()
                } else {
                    Techniques::without("chained_resolution")
                };
                let inst = HareInstance::start(cfg);
                let (shards, file) = build_tree(&inst, depth - 1, None);
                let got = cold_stat_sends(&inst, &file);
                let want = expected_sends(&shards, chained);
                assert_eq!(
                    got, want,
                    "depth {depth}, {nservers} servers, chained={chained}, shards {shards:?}"
                );
                inst.shutdown();
            }
        }
    }
}

#[test]
fn eight_deep_path_on_two_servers_resolves_in_three_messages() {
    // The headline acceptance: an 8-deep path whose components live on
    // two servers (one boundary: four components each) resolves in 3
    // messages — request, one forward, reply — instead of the 16 the
    // per-component walk pays.
    let inst = HareInstance::start(HareConfig::timeshare(2));
    let (shards, file) = build_tree(&inst, 8, Some(&[0, 0, 0, 0, 1, 1, 1, 1]));
    assert_eq!(runs(&shards), 2);
    let got = cold_stat_sends(&inst, &file);
    // 3 resolution messages + the final LookupStat round trip.
    assert_eq!(got, 3 + 2);
    inst.shutdown();

    // The same tree without chaining: one round trip per component.
    let mut cfg = HareConfig::timeshare(2);
    cfg.techniques = Techniques::without("chained_resolution");
    let inst = HareInstance::start(cfg);
    let (_, file) = build_tree(&inst, 8, Some(&[0, 0, 0, 0, 1, 1, 1, 1]));
    assert_eq!(cold_stat_sends(&inst, &file), 2 * 8 + 2);
    inst.shutdown();
}

#[test]
fn forwarding_chain_may_revisit_a_server_and_terminates() {
    // Shards alternate 0 → 1 → 0: the chain *revisits* server 0, which is
    // normal (termination comes from per-hop progress, not visit sets).
    // Three runs: request + 2 forwards + reply = 4 messages.
    let inst = HareInstance::start(HareConfig::timeshare(2));
    let (shards, file) = build_tree(&inst, 3, Some(&[0, 1, 0]));
    assert_eq!(runs(&shards), 3);
    assert_eq!(cold_stat_sends(&inst, &file), 4 + 2);
    inst.shutdown();
}

#[test]
fn chain_miss_is_cached_negatively() {
    // A chained walk that dies with ENOENT mid-path must cache the miss,
    // so the repeat probe costs zero messages — and the prefix it did
    // resolve must be cached too.
    let inst = HareInstance::start(HareConfig::timeshare(4));
    let (_, file) = build_tree(&inst, 4, None);
    let dir = file.rsplit_once('/').unwrap().0.to_string();
    let missing = format!("{dir}/ghost/deeper");
    let prober = inst.new_client(0).unwrap();
    assert_eq!(prober.stat(&missing).unwrap_err(), Errno::ENOENT);
    let before = inst.machine().msg_stats.sends();
    assert_eq!(prober.stat(&missing).unwrap_err(), Errno::ENOENT);
    assert_eq!(
        inst.machine().msg_stats.sends() - before,
        0,
        "repeat miss after a chain stop must be answered locally"
    );
    // The resolved prefix is warm: statting the real file only pays the
    // final-component exchange.
    assert_eq!(cold_stat_sends_warm(&prober, &inst, &file), 2);
    drop(prober);
    inst.shutdown();
}

/// Messages for a `stat` on an already-used client (warm parent cache).
fn cold_stat_sends_warm(
    prober: &hare_core::ClientLib,
    inst: &Arc<HareInstance>,
    file: &str,
) -> u64 {
    let before = inst.machine().msg_stats.sends();
    prober.stat(file).unwrap();
    inst.machine().msg_stats.sends() - before
}

#[test]
fn chain_reports_enotdir_for_file_intermediate() {
    // /c0/f is a regular file; resolving /c0/f/x must fail ENOTDIR under
    // both toggle settings.
    for &chained in &[true, false] {
        let mut cfg = HareConfig::timeshare(2);
        if !chained {
            cfg.techniques = Techniques::without("chained_resolution");
        }
        let inst = HareInstance::start(cfg);
        let (_, file) = build_tree(&inst, 1, None);
        let prober = inst.new_client(0).unwrap();
        let bad = format!("{file}/x/y");
        assert_eq!(
            prober.stat(&bad).unwrap_err(),
            Errno::ENOTDIR,
            "chained={chained}"
        );
        drop(prober);
        inst.shutdown();
    }
}

/// Sends a raw `LookupPath` to a chosen server and returns the reply.
fn raw_lookup_path(
    inst: &Arc<HareInstance>,
    server: usize,
    comps: Vec<String>,
    hops: u32,
) -> Reply {
    let (tx, rx) = msg::channel(Arc::clone(&inst.machine().msg_stats));
    inst.servers()[server]
        .tx
        .send(
            ServerMsg {
                req: Request::LookupPath {
                    client: 999,
                    dir: InodeId::ROOT,
                    dist: true,
                    comps,
                    acc: Vec::new(),
                    hops,
                },
                reply: tx,
            },
            0,
            0,
        )
        .unwrap();
    rx.recv().unwrap().payload.unwrap()
}

#[test]
fn exhausted_hop_budget_answers_eloop_instead_of_forwarding() {
    // A crafted request that lands at the *wrong* server with its hop
    // budget already burned: the server must answer ELOOP rather than
    // keep the chain alive forever. (Legitimate chains can never hit the
    // budget — every forward lands at the owner and resolves at least one
    // component — so only mis-routed or crafted traffic sees this.)
    let inst = HareInstance::start(HareConfig::timeshare(2));
    let (_, file) = build_tree(&inst, 2, Some(&[0, 0]));
    let comps: Vec<String> = file
        .trim_start_matches('/')
        .split('/')
        .map(str::to_string)
        .collect();

    // Mis-routed with budget left: server 1 forwards to the owner, which
    // resolves the whole path — self-healing, no error.
    match raw_lookup_path(&inst, 1, comps.clone(), 0) {
        Reply::Path { entries, stopped } => {
            assert_eq!(stopped, None);
            assert_eq!(entries.len(), comps.len());
        }
        other => panic!("unexpected {other:?}"),
    }

    // Mis-routed with the budget exhausted: ELOOP, no forward.
    let before = inst.machine().msg_stats.sends();
    match raw_lookup_path(&inst, 1, comps.clone(), u32::MAX) {
        Reply::Path { entries, stopped } => {
            assert_eq!(stopped, Some(Errno::ELOOP));
            assert!(entries.is_empty());
        }
        other => panic!("unexpected {other:?}"),
    }
    // Exactly the crafted request and its reply — nothing forwarded.
    assert_eq!(inst.machine().msg_stats.sends() - before, 2);
    inst.shutdown();
}
