//! Exchange-count and protocol tests for server-side chained path
//! resolution (`LookupPath` forwarding) and its fused terminal op.
//!
//! Counting convention: `MsgStats::sends()` counts every message — the
//! client's request, each server-to-server forward, and the final reply.
//! A chained resolution of p components spread over r *runs* of
//! co-located components therefore costs r + 1 messages (one client send,
//! r - 1 forwards, one reply), versus 2p messages for the per-component
//! walk. With terminal-op fusion the *whole cold stat* — resolution plus
//! the final coalesced stat — rides one chain, so the end-to-end cost is
//! r + 1 messages over all p components (plus a StatInode round trip only
//! when the terminal inode lives away from the final chain server). The
//! expected counts below are computed from the actual shard placement via
//! the exported routing function, so the tests hold for any hash layout.

use fsapi::{Errno, MkdirOpts, Mode, ProcFs, Stat};
use hare_core::proto::{Reply, Request, ServerMsg, TerminalOp};
use hare_core::{dentry_shard, HareConfig, HareInstance, InodeId, Techniques};
use std::sync::Arc;

/// Creates a chain of *distributed* directories under `/` with a regular
/// file in the deepest one, `depth` components in total (so `depth - 1`
/// directories), and returns the shard server of every component —
/// including the file's — plus the file's path.
///
/// Component names are free-form unless `want_shards` pins, per level, the
/// server the component's dentry must hash to (names are then brute-forced
/// against the exported routing function; the last entry pins the file).
fn build_tree(
    inst: &Arc<HareInstance>,
    depth: usize,
    want_shards: Option<&[u16]>,
) -> (Vec<u16>, String) {
    assert!(depth >= 1);
    if let Some(w) = want_shards {
        assert_eq!(w.len(), depth, "one pinned shard per component");
    }
    let nservers = inst.servers().len();
    let setup = inst.new_client(0).unwrap();
    let mut path = String::new();
    let mut parent = InodeId::ROOT;
    let mut shards = Vec::new();
    for level in 0..depth - 1 {
        let name = match want_shards {
            Some(w) => (0..)
                .map(|i| format!("c{level}x{i}"))
                .find(|n| dentry_shard(parent, true, n, nservers) == w[level])
                .unwrap(),
            None => format!("c{level}"),
        };
        shards.push(dentry_shard(parent, true, &name, nservers));
        path = format!("{path}/{name}");
        setup
            .mkdir_opts(&path, Mode::default(), MkdirOpts::DISTRIBUTED)
            .unwrap();
        let st = setup.stat(&path).unwrap();
        parent = InodeId {
            server: st.server,
            num: st.ino,
        };
    }
    let fname = match want_shards {
        Some(w) => (0..)
            .map(|i| format!("fx{i}"))
            .find(|n| dentry_shard(parent, true, n, nservers) == w[depth - 1])
            .unwrap(),
        None => "f".to_string(),
    };
    shards.push(dentry_shard(parent, true, &fname, nservers));
    let file = format!("{path}/{fname}");
    fsapi::write_file(&setup, &file, b"x").unwrap();
    drop(setup);
    (shards, file)
}

/// Messages for one cold-cache `stat` of the deep file, plus the stat
/// itself (whose `server` field tells where the terminal inode lives).
fn cold_stat(inst: &Arc<HareInstance>, file: &str) -> (u64, Stat) {
    let prober = inst.new_client(0).unwrap();
    let before = inst.machine().msg_stats.sends();
    let st = prober.stat(file).unwrap();
    assert_eq!(st.size, 1);
    let delta = inst.machine().msg_stats.sends() - before;
    drop(prober);
    (delta, st)
}

/// Number of runs of consecutive equal shards (the chain's hop count + 1).
fn runs(shards: &[u16]) -> u64 {
    if shards.is_empty() {
        return 0;
    }
    1 + shards.windows(2).filter(|w| w[0] != w[1]).count() as u64
}

/// The expected message count for a cold stat of a file whose path
/// components (file included) hash to `shards` and whose inode lives on
/// `ino_server`.
fn expected_sends(shards: &[u16], ino_server: u16, chained: bool, fused: bool) -> u64 {
    let p = shards.len();
    // A StatInode round trip completes the stat whenever the terminal
    // inode is not stored by the server answering the final component.
    let extra = if ino_server != *shards.last().unwrap() {
        2
    } else {
        0
    };
    if chained && fused {
        // The whole operation rides the chain (or, for a single
        // component, the coalesced LookupStat): one end-to-end exchange
        // per run of co-located components.
        let resolve = if p >= 2 { runs(shards) + 1 } else { 2 };
        return resolve + extra;
    }
    let dirs = &shards[..p - 1];
    let resolve = if chained && dirs.len() >= 2 {
        runs(dirs) + 1
    } else {
        2 * dirs.len() as u64
    };
    // ... plus the final component's LookupStat round trip.
    resolve + 2 + extra
}

#[test]
fn chained_exchange_counts_match_shard_runs_across_depths_and_servers() {
    // Depths 1/4/8 across 1/2/8 servers, with chaining and fusion ablated
    // one at a time. Depth counts the full path components; the file is
    // the last one.
    for &nservers in &[1usize, 2, 8] {
        for &depth in &[1usize, 4, 8] {
            for &(chained, fused) in &[(true, true), (true, false), (false, true)] {
                let mut cfg = HareConfig::timeshare(nservers);
                cfg.techniques = match (chained, fused) {
                    (true, true) => Techniques::default(),
                    (true, false) => Techniques::without("fused_terminal"),
                    (false, _) => Techniques::without("chained_resolution"),
                };
                let inst = HareInstance::start(cfg);
                let (shards, file) = build_tree(&inst, depth, None);
                let (got, st) = cold_stat(&inst, &file);
                let want = expected_sends(&shards, st.server, chained, fused);
                assert_eq!(
                    got, want,
                    "depth {depth}, {nservers} servers, chained={chained}, \
                     fused={fused}, shards {shards:?}, ino@{}",
                    st.server
                );
                inst.shutdown();
            }
        }
    }
}

#[test]
fn cold_depth8_stat_with_aligned_shards_is_one_end_to_end_exchange() {
    // The headline acceptance: every component of an 8-deep path hashes
    // to the same server of a 2-server machine, and the terminal inode
    // lives there too (single-socket affinity) — the cold stat is ONE
    // end-to-end exchange: the request and the fused reply, no forwards,
    // no follow-up.
    let inst = HareInstance::start(HareConfig::timeshare(2));
    let (shards, file) = build_tree(&inst, 8, Some(&[1; 8]));
    assert_eq!(runs(&shards), 1);
    let (got, st) = cold_stat(&inst, &file);
    assert_eq!(st.server, 1, "affinity keeps the inode at the shard");
    assert_eq!(got, 2, "request + fused reply, nothing else");
    inst.shutdown();
}

#[test]
fn eight_deep_path_on_two_servers_resolves_in_three_messages() {
    // An 8-deep path whose components live on two servers (one boundary:
    // four components each, the file on the second run): the whole cold
    // stat is 3 messages — request, one forward, fused reply — instead of
    // the 18 the per-component walk pays.
    let inst = HareInstance::start(HareConfig::timeshare(2));
    let (shards, file) = build_tree(&inst, 8, Some(&[0, 0, 0, 0, 1, 1, 1, 1]));
    assert_eq!(runs(&shards), 2);
    let (got, _) = cold_stat(&inst, &file);
    assert_eq!(got, 3);
    inst.shutdown();

    // The same tree without chaining: one round trip per component.
    let mut cfg = HareConfig::timeshare(2);
    cfg.techniques = Techniques::without("chained_resolution");
    let inst = HareInstance::start(cfg);
    let (_, file) = build_tree(&inst, 8, Some(&[0, 0, 0, 0, 1, 1, 1, 1]));
    let (got, _) = cold_stat(&inst, &file);
    assert_eq!(got, 2 * 8);
    inst.shutdown();
}

#[test]
fn forwarding_chain_may_revisit_a_server_and_terminates() {
    // Shards alternate 0 → 1 → 0 → 0: the chain *revisits* server 0,
    // which is normal (termination comes from per-hop progress, not visit
    // sets). Three runs: request + 2 forwards + fused reply = 4 messages.
    let inst = HareInstance::start(HareConfig::timeshare(2));
    let (shards, file) = build_tree(&inst, 4, Some(&[0, 1, 0, 0]));
    assert_eq!(runs(&shards), 3);
    let (got, _) = cold_stat(&inst, &file);
    assert_eq!(got, 4);
    inst.shutdown();
}

#[test]
fn chain_miss_is_cached_negatively() {
    // A chained walk that dies with ENOENT mid-path must cache the miss,
    // so the repeat probe costs zero messages — and the prefix it did
    // resolve must be cached too.
    let inst = HareInstance::start(HareConfig::timeshare(4));
    let (_, file) = build_tree(&inst, 5, None);
    let dir = file.rsplit_once('/').unwrap().0.to_string();
    let missing = format!("{dir}/ghost/deeper");
    let prober = inst.new_client(0).unwrap();
    assert_eq!(prober.stat(&missing).unwrap_err(), Errno::ENOENT);
    let before = inst.machine().msg_stats.sends();
    assert_eq!(prober.stat(&missing).unwrap_err(), Errno::ENOENT);
    assert_eq!(
        inst.machine().msg_stats.sends() - before,
        0,
        "repeat miss after a chain stop must be answered locally"
    );
    // The resolved prefix is warm: statting the real file only pays the
    // final-component exchange.
    let before = inst.machine().msg_stats.sends();
    prober.stat(&file).unwrap();
    assert_eq!(inst.machine().msg_stats.sends() - before, 2);
    drop(prober);
    inst.shutdown();
}

#[test]
fn chain_reports_enotdir_for_file_intermediate() {
    // /c0/f is a regular file; resolving /c0/f/x must fail ENOTDIR under
    // every toggle setting.
    for technique in ["none", "chained_resolution", "fused_terminal"] {
        let mut cfg = HareConfig::timeshare(2);
        if technique != "none" {
            cfg.techniques = Techniques::without(technique);
        }
        let inst = HareInstance::start(cfg);
        let (_, file) = build_tree(&inst, 2, None);
        let prober = inst.new_client(0).unwrap();
        let bad = format!("{file}/x/y");
        assert_eq!(
            prober.stat(&bad).unwrap_err(),
            Errno::ENOTDIR,
            "without {technique}"
        );
        drop(prober);
        inst.shutdown();
    }
}

/// Sends a raw `LookupPath` to a chosen server and returns the reply.
fn raw_lookup_path(
    inst: &Arc<HareInstance>,
    server: usize,
    comps: Vec<String>,
    hops: u32,
) -> Reply {
    let (tx, rx) = msg::channel(Arc::clone(&inst.machine().msg_stats));
    inst.servers()[server]
        .tx
        .send(
            ServerMsg {
                req: Request::LookupPath {
                    client: 999,
                    dir: InodeId::ROOT,
                    dist: true,
                    comps,
                    acc: Vec::new(),
                    hops,
                    terminal: TerminalOp::None,
                },
                reply: tx,
                span: None,
            },
            0,
            0,
        )
        .unwrap();
    rx.recv().unwrap().payload.unwrap()
}

#[test]
fn exhausted_hop_budget_answers_eloop_instead_of_forwarding() {
    // A crafted request that lands at the *wrong* server with its hop
    // budget already burned: the server must answer ELOOP rather than
    // keep the chain alive forever. (Legitimate chains can never hit the
    // budget — every forward lands at the owner and resolves at least one
    // component — so only mis-routed or crafted traffic sees this.)
    let inst = HareInstance::start(HareConfig::timeshare(2));
    let (_, file) = build_tree(&inst, 3, Some(&[0, 0, 0]));
    let comps: Vec<String> = file
        .trim_start_matches('/')
        .split('/')
        .map(str::to_string)
        .collect();

    // Mis-routed with budget left: server 1 forwards to the owner, which
    // resolves the whole path — self-healing, no error.
    match raw_lookup_path(&inst, 1, comps.clone(), 0) {
        Reply::Path {
            entries, stopped, ..
        } => {
            assert_eq!(stopped, None);
            assert_eq!(entries.len(), comps.len());
        }
        other => panic!("unexpected {other:?}"),
    }

    // Mis-routed with the budget exhausted: ELOOP, no forward.
    let before = inst.machine().msg_stats.sends();
    match raw_lookup_path(&inst, 1, comps.clone(), u32::MAX) {
        Reply::Path {
            entries, stopped, ..
        } => {
            assert_eq!(stopped, Some(Errno::ELOOP));
            assert!(entries.is_empty());
        }
        other => panic!("unexpected {other:?}"),
    }
    // Exactly the crafted request and its reply — nothing forwarded.
    assert_eq!(inst.machine().msg_stats.sends() - before, 2);
    inst.shutdown();
}
