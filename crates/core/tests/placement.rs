//! Integration tests for the dynamic placement subsystem: live shard
//! migration, epoch-versioned routing, `NotOwner` redirects, chained
//! resolution across a migrated directory, and the rebalancer.
//!
//! Counting convention as everywhere: `sends()` counts every message, one
//! RPC is two sends (request + reply).

use fsapi::{Errno, MkdirOpts, Mode, OpenFlags, ProcFs};
use hare_core::placement::RebalancePolicy;
use hare_core::{dentry_shard, HareConfig, HareInstance, InodeId, Techniques};
use std::sync::Arc;

/// A name under `dir` whose dentry shard is `want`.
fn pinned_name(dir: InodeId, dist: bool, prefix: &str, want: u16, nservers: usize) -> String {
    (0..)
        .map(|i| format!("{prefix}{i}"))
        .find(|n| dentry_shard(dir, dist, n, nservers) == want)
        .expect("some name hashes to every shard")
}

/// Boots `nservers` timeshare cores with a centralized `/hot` directory
/// holding `files` entries, and returns the instance plus the directory's
/// home server.
fn hot_dir_instance(nservers: usize, files: usize) -> (Arc<HareInstance>, u16) {
    let inst = HareInstance::start(HareConfig::timeshare(nservers));
    let setup = inst.new_client(0).unwrap();
    setup
        .mkdir_opts("/hot", Mode::default(), MkdirOpts::default())
        .unwrap();
    for i in 0..files {
        fsapi::write_file(&setup, &format!("/hot/f{i}"), b"payload").unwrap();
    }
    let home = setup.stat("/hot").unwrap().server;
    drop(setup);
    (inst, home)
}

#[test]
fn migration_preserves_entries_and_redirects_stale_clients_once() {
    let nservers = 4;
    let nfiles = 8;
    let (inst, home) = hot_dir_instance(nservers, nfiles);
    let to = (home + 1) % nservers as u16;

    // A stale client that resolved everything before the migration.
    let stale = inst.new_client(0).unwrap();
    for i in 0..nfiles {
        stale.stat(&format!("/hot/f{i}")).unwrap();
    }

    // Migrate /hot's shard.
    let admin = inst.new_client(0).unwrap();
    assert!(admin.migrate_dir("/hot", to).unwrap());
    assert_eq!(admin.dir_owner("/hot").unwrap(), to);

    // No entry was lost; a fresh client sees the full directory.
    let fresh = inst.new_client(0).unwrap();
    assert_eq!(fresh.readdir("/hot").unwrap().len(), nfiles);
    for i in 0..nfiles {
        assert_eq!(fresh.stat(&format!("/hot/f{i}")).unwrap().size, 7);
    }

    // The stale client's cached entries were invalidated by the migration
    // (through the tracking lists), so its next stats re-resolve — paying
    // exactly ONE NotOwner bounce for the whole directory, not one per
    // entry. Pre-migration files keep their inodes at the old home
    // (inodes never migrate), so each stat is lookup@new-owner +
    // StatInode@home = 2 exchanges; the first op adds the one bounce.
    let before = inst.machine().msg_stats.sends();
    stale.stat("/hot/f0").unwrap();
    assert_eq!(
        inst.machine().msg_stats.sends() - before,
        2 + 2 * 2,
        "first stale op pays exactly one redirect bounce"
    );
    let before = inst.machine().msg_stats.sends();
    for i in 1..nfiles {
        stale.stat(&format!("/hot/f{i}")).unwrap();
    }
    assert_eq!(
        inst.machine().msg_stats.sends() - before,
        2 * 2 * (nfiles as u64 - 1),
        "after one bounce the stale client routes directly"
    );

    drop(stale);
    drop(fresh);
    drop(admin);
    inst.shutdown();
}

#[test]
fn redirect_storm_costs_one_bounce_per_stale_directory() {
    // Many stale clients, several migrated directories: each client pays
    // at most one NotOwner bounce per directory, never a storm.
    let nservers = 4;
    let inst = HareInstance::start(HareConfig::timeshare(nservers));
    let setup = inst.new_client(0).unwrap();
    let dirs = ["/d0", "/d1", "/d2"];
    for d in &dirs {
        setup
            .mkdir_opts(d, Mode::default(), MkdirOpts::default())
            .unwrap();
        for i in 0..4 {
            fsapi::write_file(&setup, &format!("{d}/f{i}"), b"x").unwrap();
        }
    }

    // Stale clients warm every path, then every directory migrates.
    let stale: Vec<_> = (0..3).map(|c| inst.new_client(c).unwrap()).collect();
    for c in &stale {
        for d in &dirs {
            for i in 0..4 {
                c.stat(&format!("{d}/f{i}")).unwrap();
            }
        }
    }
    for d in &dirs {
        let home = setup.stat(d).unwrap().server;
        assert!(setup.migrate_dir(d, (home + 2) % nservers as u16).unwrap());
    }
    // The commit's invalidation sends happen in the source server threads
    // after the commit reply; one fan-out round trip serializes behind
    // them (servers handle messages in order), so the send-counter
    // snapshots below are deterministic.
    let _ = setup.server_loads(false).unwrap();

    for (ci, c) in stale.iter().enumerate() {
        // Pure dentry operations (ENOENT probes of distinct names, the
        // O_CREAT pattern): each is exactly one exchange at the owner, so
        // the redirect overhead is isolated — 12 probes cost 12 exchanges
        // plus exactly one bounce per migrated directory, never a storm.
        let before = inst.machine().msg_stats.sends();
        for d in &dirs {
            for i in 0..4 {
                assert_eq!(
                    c.stat(&format!("{d}/ghost_c{ci}_{i}")).unwrap_err(),
                    Errno::ENOENT
                );
            }
        }
        let sends = inst.machine().msg_stats.sends() - before;
        assert_eq!(
            sends,
            2 * 12 + 2 * dirs.len() as u64,
            "one bounce per stale directory, no storm"
        );
    }
    drop(setup);
    drop(stale);
    inst.shutdown();
}

#[test]
fn migration_under_concurrent_traffic_loses_no_entries_and_fails_no_op() {
    // Worker threads churn the directory (create + stat + unlink) while
    // the main thread migrates it. Every in-flight operation must succeed
    // — operations caught in the copy window park and replay — and the
    // namespace must be exactly what the surviving creates left.
    let nservers = 4;
    let (inst, home) = hot_dir_instance(nservers, 4);
    let to = (home + 1) % nservers as u16;

    let workers = 3;
    let rounds = 40;
    let mut joins = Vec::new();
    for w in 0..workers {
        let inst = Arc::clone(&inst);
        joins.push(std::thread::spawn(move || {
            let c = inst.new_client(w % 4).unwrap();
            for i in 0..rounds {
                let keep = format!("/hot/keep_w{w}_{i}");
                let tmp = format!("/hot/tmp_w{w}_{i}");
                fsapi::write_file(&c, &keep, b"k").unwrap();
                fsapi::write_file(&c, &tmp, b"t").unwrap();
                assert_eq!(c.stat(&keep).unwrap().size, 1, "in-flight stat failed");
                c.unlink(&tmp).unwrap();
            }
            drop(c);
        }));
    }
    // Migrate mid-churn (twice, to also cross a re-migration).
    let admin = inst.new_client(3).unwrap();
    assert!(admin.migrate_dir("/hot", to).unwrap());
    assert!(admin.migrate_dir("/hot", home).unwrap());
    for j in joins {
        j.join().unwrap();
    }

    // Nothing lost, nothing leaked.
    let fresh = inst.new_client(0).unwrap();
    let names: Vec<String> = fresh
        .readdir("/hot")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    let keeps = names.iter().filter(|n| n.starts_with("keep_")).count();
    let tmps = names.iter().filter(|n| n.starts_with("tmp_")).count();
    assert_eq!(keeps, workers * rounds, "a migrated entry vanished");
    assert_eq!(tmps, 0, "an unlinked entry survived migration");
    drop(fresh);
    drop(admin);
    inst.shutdown();
}

#[test]
fn chain_hop_landing_on_stale_owner_reforwards_within_budget() {
    // A deep path through a migrated directory, resolved cold by a client
    // that knows nothing of the migration: the chain lands at the old
    // owner, which re-forwards under its table — one extra hop (one
    // message), not an extra client exchange, and never ELOOP.
    let nservers = 4;
    let inst = HareInstance::start(HareConfig::timeshare(nservers));
    let setup = inst.new_client(0).unwrap();
    setup
        .mkdir_opts("/mid", Mode::default(), MkdirOpts::default())
        .unwrap();
    fsapi::mkdir_p(&setup, "/mid/leafdir", MkdirOpts::default()).unwrap();
    fsapi::write_file(&setup, "/mid/leafdir/file", b"x").unwrap();
    let home = setup.stat("/mid").unwrap().server;
    let to = (home + 1) % nservers as u16;
    assert!(setup.migrate_dir("/mid", to).unwrap());
    drop(setup);

    let c = inst.new_client(0).unwrap();
    let st = c.stat("/mid/leafdir/file").unwrap();
    assert_eq!(st.size, 1);
    drop(c);
    inst.shutdown();
}

#[test]
fn rmdir_of_migrated_directory_works_and_respects_entries() {
    let nservers = 4;
    let (inst, home) = hot_dir_instance(nservers, 2);
    let to = (home + 1) % nservers as u16;
    let admin = inst.new_client(0).unwrap();
    assert!(admin.migrate_dir("/hot", to).unwrap());

    // Still ENOTEMPTY while entries live at the new owner (a naive
    // central removal at the home server would see an empty shard and
    // wrongly delete the directory).
    let c = inst.new_client(1).unwrap();
    assert_eq!(c.rmdir("/hot").unwrap_err(), Errno::ENOTEMPTY);
    c.unlink("/hot/f0").unwrap();
    c.unlink("/hot/f1").unwrap();
    c.rmdir("/hot").unwrap();
    assert_eq!(c.stat("/hot").unwrap_err(), Errno::ENOENT);
    // The name is reusable afterwards.
    c.mkdir("/hot", Mode::default()).unwrap();
    fsapi::write_file(&c, "/hot/again", b"y").unwrap();
    assert_eq!(c.readdir("/hot").unwrap().len(), 1);
    drop(c);
    drop(admin);
    inst.shutdown();
}

#[test]
fn new_creations_under_migrated_directory_coalesce_at_the_new_owner() {
    let nservers = 4;
    let (inst, home) = hot_dir_instance(nservers, 1);
    let to = (home + 1) % nservers as u16;
    let admin = inst.new_client(0).unwrap();
    assert!(admin.migrate_dir("/hot", to).unwrap());

    // A fresh file's inode lands at the new owner (creation placement
    // follows the routing table), and the create is still the coalesced
    // single exchange once the client knows the route.
    let c = inst.new_client(0).unwrap();
    c.stat("/hot").unwrap(); // learn nothing yet: /hot's entry is in root
    fsapi::write_file(&c, "/hot/fresh", b"z").unwrap();
    assert_eq!(c.stat("/hot/fresh").unwrap().server, to);
    drop(c);
    drop(admin);
    inst.shutdown();
}

#[test]
fn rename_across_a_migrated_parent_succeeds_with_one_bounce() {
    let nservers = 4;
    let (inst, home) = hot_dir_instance(nservers, 1);
    let to = (home + 1) % nservers as u16;

    // A client with warm routes... but stale after the migration.
    let c = inst.new_client(0).unwrap();
    c.stat("/hot/f0").unwrap();
    let admin = inst.new_client(1).unwrap();
    assert!(admin.migrate_dir("/hot", to).unwrap());

    c.rename("/hot/f0", "/hot/renamed").unwrap();
    assert_eq!(c.stat("/hot/renamed").unwrap().size, 7);
    assert_eq!(c.stat("/hot/f0").unwrap_err(), Errno::ENOENT);
    // And a rename out of the migrated directory into another one.
    c.mkdir("/other", Mode::default()).unwrap();
    c.rename("/hot/renamed", "/other/out").unwrap();
    assert_eq!(c.stat("/other/out").unwrap().size, 7);
    // The reverse direction, from a client that never heard of the
    // migration, exercises the ordered pair with only the ADD half stale:
    // the fail-fast transport must skip the RM behind the ADD's redirect
    // (add-before-rm survives the bounce), then re-send the pair — the
    // file is reachable under exactly one name throughout.
    let naive = inst.new_client(2).unwrap();
    naive.rename("/other/out", "/hot/back").unwrap();
    assert_eq!(naive.stat("/hot/back").unwrap().size, 7);
    assert_eq!(naive.stat("/other/out").unwrap_err(), Errno::ENOENT);
    drop(naive);
    drop(c);
    drop(admin);
    inst.shutdown();
}

#[test]
fn migration_is_refused_for_distributed_directories_and_the_root() {
    let inst = HareInstance::start(HareConfig::timeshare(4));
    let c = inst.new_client(0).unwrap();
    c.mkdir_opts("/dist", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    assert_eq!(c.migrate_dir("/dist", 1).unwrap_err(), Errno::EINVAL);
    assert_eq!(c.migrate_dir("/", 1).unwrap_err(), Errno::EBUSY);
    // Migrating a file is no directory migration either.
    fsapi::write_file(&c, "/plain", b"x").unwrap();
    assert_eq!(c.migrate_dir("/plain", 1).unwrap_err(), Errno::ENOTDIR);
    drop(c);
    inst.shutdown();
}

#[test]
fn rebalancing_off_is_byte_for_byte_the_static_system() {
    // The same operation sequence with the technique on (but no migration
    // performed) and off must produce identical message counts — the
    // epoch-0 routing table is the paper's hash.
    let count = |techniques: Techniques| {
        let mut cfg = HareConfig::timeshare(4);
        cfg.techniques = techniques;
        let inst = HareInstance::start(cfg);
        let c = inst.new_client(0).unwrap();
        let before = inst.machine().msg_stats.sends();
        fsapi::mkdir_p(&c, "/a/b", MkdirOpts::default()).unwrap();
        fsapi::write_file(&c, "/a/b/f", b"x").unwrap();
        c.stat("/a/b/f").unwrap();
        assert_eq!(c.readdir("/a/b").unwrap().len(), 1);
        c.rename("/a/b/f", "/a/b/g").unwrap();
        c.unlink("/a/b/g").unwrap();
        c.rmdir("/a/b").unwrap();
        let sends = inst.machine().msg_stats.sends() - before;
        drop(c);
        inst.shutdown();
        sends
    };
    assert_eq!(
        count(Techniques::default()),
        count(Techniques::without("rebalancing")),
        "an unused placement subsystem must cost zero messages"
    );
    // And the migration driver really is inert with the toggle off.
    let mut cfg = HareConfig::timeshare(4);
    cfg.techniques = Techniques::without("rebalancing");
    let inst = HareInstance::start(cfg);
    let c = inst.new_client(0).unwrap();
    c.mkdir("/hot", Mode::default()).unwrap();
    let home = c.stat("/hot").unwrap().server;
    assert!(!c.migrate_dir("/hot", (home + 1) % 4).unwrap());
    assert_eq!(c.dir_owner("/hot").unwrap(), home);
    assert!(c
        .rebalance_once(&RebalancePolicy::default())
        .unwrap()
        .is_none());
    drop(c);
    inst.shutdown();
}

#[test]
fn rebalancer_migrates_the_hot_directory_to_the_coolest_server() {
    let nservers = 4;
    let (inst, home) = hot_dir_instance(nservers, 4);

    // Hammer the hot directory from a few clients so its server and its
    // directory dominate the load counters.
    for w in 0..3 {
        let c = inst.new_client(w).unwrap();
        for r in 0..30 {
            let p = format!("/hot/m{w}_{r}");
            fsapi::write_file(&c, &p, b"x").unwrap();
            c.unlink(&p).unwrap();
        }
        drop(c);
    }

    let admin = inst.new_client(0).unwrap();
    let plan = admin
        .rebalance_once(&RebalancePolicy::default())
        .unwrap()
        .expect("the skew must trigger a migration");
    assert_eq!(plan.from, home);
    assert_ne!(plan.to, home);
    assert_eq!(admin.dir_owner("/hot").unwrap(), plan.to);
    // A second pass right after sees reset counters and stays put.
    assert!(admin
        .rebalance_once(&RebalancePolicy::default())
        .unwrap()
        .is_none());
    // The namespace survived.
    assert_eq!(admin.readdir("/hot").unwrap().len(), 4);
    drop(admin);
    inst.shutdown();
}

#[test]
fn open_close_and_io_survive_migration_with_write_behind_sizes() {
    // Write-behind size flushes are inode-server state keyed by
    // descriptor: they are unaffected by the dentry shard moving, so a
    // file written before the migration publishes its size correctly
    // after it — and descriptors opened before stay usable.
    let nservers = 4;
    let (inst, home) = hot_dir_instance(nservers, 1);
    let c = inst.new_client(0).unwrap();
    let fd = c
        .open(
            "/hot/wb",
            OpenFlags::CREAT | OpenFlags::WRONLY,
            Mode::default(),
        )
        .unwrap();
    assert_eq!(c.write(fd, b"0123456789").unwrap(), 10);

    let admin = inst.new_client(1).unwrap();
    assert!(admin
        .migrate_dir("/hot", (home + 1) % nservers as u16)
        .unwrap());

    // The buffered size flushes through the descriptor, not the shard.
    c.fsync(fd).unwrap();
    let other = inst.new_client(2).unwrap();
    assert_eq!(other.stat("/hot/wb").unwrap().size, 10);
    assert_eq!(c.write(fd, b"x").unwrap(), 1);
    c.close(fd).unwrap();
    assert_eq!(other.stat("/hot/wb").unwrap().size, 11);
    drop(other);
    drop(admin);
    drop(c);
    inst.shutdown();
}

#[test]
fn pinned_migration_exchange_counts() {
    // The migration protocol itself is three exchanges: Begin (snapshot),
    // Install, Commit — plus nothing else when no client is tracked and
    // the driver already routes to the source.
    let nservers = 2;
    let (inst, home) = hot_dir_instance(nservers, 3);
    let admin = inst.new_client(0).unwrap();
    // Warm the admin's route to /hot (parent resolution).
    admin.stat("/hot").unwrap();
    let before = inst.machine().msg_stats.sends();
    assert!(admin.migrate_dir("/hot", (home + 1) % 2).unwrap());
    let sends = inst.machine().msg_stats.sends() - before;
    // Begin + Install + Commit = 3 exchanges = 6 sends. (The setup
    // client's tracked entries were consumed when it dropped, so no
    // invalidation messages ride on the commit.)
    assert_eq!(sends, 6, "migration must cost exactly three exchanges");
    drop(admin);
    inst.shutdown();
}

#[test]
fn readdir_of_migrated_directory_routes_to_the_new_owner() {
    let nservers = 4;
    let (inst, home) = hot_dir_instance(nservers, 5);
    let to = (home + 1) % nservers as u16;

    // A stale client that already listed the directory once.
    let stale = inst.new_client(0).unwrap();
    assert_eq!(stale.readdir("/hot").unwrap().len(), 5);

    let admin = inst.new_client(1).unwrap();
    assert!(admin.migrate_dir("/hot", to).unwrap());

    // The stale listing bounces once and comes back complete; fresh
    // clients route per chain re-forwarding.
    assert_eq!(stale.readdir("/hot").unwrap().len(), 5);
    let fresh = inst.new_client(2).unwrap();
    assert_eq!(fresh.readdir("/hot").unwrap().len(), 5);
    // readdir_plus agrees and carries correct stats.
    let plus = fresh.readdir_plus("/hot").unwrap();
    assert_eq!(plus.len(), 5);
    assert!(plus.iter().all(|(_, s)| s.size == 7));
    drop(stale);
    drop(fresh);
    drop(admin);
    inst.shutdown();
}

#[test]
fn migration_into_an_rmdir_marked_destination_aborts_cleanly() {
    // The destination of a migration is mid-rmdir (its shard is marked):
    // MigrateInstall must be REJECTED inline, not parked — parking would
    // close a wait cycle between the rmdir (whose mark fan-out can park
    // behind the source's migration window) and the migration driver —
    // and installing under the mark would let the rmdir's emptiness votes
    // miss the migrated entries and commit a non-empty removal. The
    // driver aborts, the source unparks, and the directory is intact.
    use hare_core::proto::{Reply, Request, ServerMsg};
    let nservers = 2;
    let (inst, home) = hot_dir_instance(nservers, 3);
    let to = (home + 1) % 2;
    let hstat = inst.new_client(0).unwrap().stat("/hot").unwrap();
    let dir = InodeId {
        server: hstat.server,
        num: hstat.ino,
    };

    // Mark /hot for deletion at the *destination* only (the prepare phase
    // of a distributed rmdir, driven raw so the window stays open).
    let raw = |server: usize, req: Request| {
        let (tx, rx) = msg::channel(Arc::clone(&inst.machine().msg_stats));
        inst.servers()[server]
            .tx
            .send(
                ServerMsg {
                    req,
                    reply: tx,
                    span: None,
                },
                0,
                0,
            )
            .unwrap();
        rx.recv().unwrap().payload
    };
    match raw(to as usize, Request::RmdirMark { dir }) {
        Ok(Reply::RmdirMark(_)) => {}
        other => panic!("unexpected {other:?}"),
    }

    let admin = inst.new_client(0).unwrap();
    assert_eq!(
        admin.migrate_dir("/hot", to).unwrap_err(),
        Errno::EAGAIN,
        "install under an rmdir mark must be rejected"
    );
    // The abort unparked the source: the directory still answers, entries
    // intact, still owned by its home.
    assert_eq!(admin.dir_owner("/hot").unwrap(), home);
    assert_eq!(admin.readdir("/hot").unwrap().len(), 3);
    // After the rmdir resolves, the migration goes through.
    match raw(to as usize, Request::RmdirAbort { dir }) {
        Ok(Reply::Unit) => {}
        other => panic!("unexpected {other:?}"),
    }
    assert!(admin.migrate_dir("/hot", to).unwrap());
    assert_eq!(admin.readdir("/hot").unwrap().len(), 3);
    drop(admin);
    inst.shutdown();
}

#[test]
fn migrate_dir_rejects_an_unknown_server() {
    let (inst, _) = hot_dir_instance(2, 1);
    let c = inst.new_client(0).unwrap();
    assert_eq!(c.migrate_dir("/hot", 99).unwrap_err(), Errno::EINVAL);
    drop(c);
    inst.shutdown();
}

#[test]
fn pinned_shard_name_helper_is_sound() {
    // Keep the helper honest: the brute-forced names really land on the
    // requested shard.
    for want in 0..4u16 {
        let n = pinned_name(InodeId::ROOT, true, "x", want, 4);
        assert_eq!(dentry_shard(InodeId::ROOT, true, &n, 4), want);
    }
}
