//! Bounded-memory tests for the negative dentry cache and the server-side
//! miss-tracking lists: an adversarial stream of probes for distinct
//! absent names must not grow either structure past its configured
//! capacity, and the bound must stay *sound* — evictions only ever cause
//! re-resolution, never a stale answer.

use fsapi::{Errno, ProcFs};
use hare_core::{HareConfig, HareInstance};

#[test]
fn adversarial_probe_stream_stays_within_client_capacity() {
    let mut cfg = HareConfig::timeshare(1);
    cfg.dircache_capacity = 64;
    cfg.server_track_capacity = 64;
    let inst = HareInstance::start(cfg);
    let c = inst.new_client(0).unwrap();

    // Hammer absent names: every probe caches a negative dentry, and the
    // server tracks the miss. Both must stay bounded.
    for i in 0..2000 {
        assert_eq!(c.stat(&format!("/ghost{i}")).unwrap_err(), Errno::ENOENT);
        assert!(
            c.dircache_len() <= 64,
            "client dircache exceeded capacity at probe {i}: {}",
            c.dircache_len()
        );
    }
    assert_eq!(c.dircache_len(), 64);
    drop(c);
    inst.shutdown();
}

#[test]
fn eviction_is_sound_after_tracking_overflow() {
    // Overflow the server's tracking table, then create one of the names
    // whose miss-tracking slot was evicted. The client's negative entry
    // was dropped by the eviction invalidation, so the next lookup must
    // re-resolve and see the new file — never a stale ENOENT.
    let mut cfg = HareConfig::timeshare(1);
    cfg.dircache_capacity = 1024; // client side roomy: the server bound is under test
    cfg.server_track_capacity = 16;
    let inst = HareInstance::start(cfg);
    let prober = inst.new_client(0).unwrap();
    assert_eq!(prober.stat("/early").unwrap_err(), Errno::ENOENT);
    // 100 further probes push /early's tracking slot out of the table.
    for i in 0..100 {
        assert_eq!(prober.stat(&format!("/g{i}")).unwrap_err(), Errno::ENOENT);
    }

    let creator = inst.new_client(0).unwrap();
    fsapi::write_file(&creator, "/early", b"now exists").unwrap();
    drop(creator);

    let st = prober
        .stat("/early")
        .expect("evicted negative entry must re-resolve");
    assert_eq!(st.size, 10);
    drop(prober);
    inst.shutdown();
}

#[test]
fn positive_entries_survive_eviction_via_reresolution() {
    // A client's positive entry may be evicted (client bound) or its
    // tracking slot may be (server bound); either way the name must keep
    // resolving correctly afterwards.
    let mut cfg = HareConfig::timeshare(1);
    cfg.dircache_capacity = 8;
    cfg.server_track_capacity = 8;
    let inst = HareInstance::start(cfg);
    let c = inst.new_client(0).unwrap();
    fsapi::write_file(&c, "/keeper", b"data").unwrap();
    for i in 0..50 {
        assert_eq!(c.stat(&format!("/no{i}")).unwrap_err(), Errno::ENOENT);
    }
    assert!(c.dircache_len() <= 8);
    assert_eq!(c.stat("/keeper").unwrap().size, 4);
    drop(c);
    inst.shutdown();
}
