//! Integration tests for the striped block data plane: extent-mapped
//! files, block-list-bearing opens, parallel stripe exchanges with
//! readahead, the fused `Create` chain terminal, and the interplay with
//! live shard migration.
//!
//! Counting convention as everywhere: `sends()` counts every message, one
//! RPC is two sends (request + reply).

use fsapi::{Errno, MkdirOpts, Mode, OpenFlags, ProcFs};
use hare_core::{dentry_shard, HareConfig, HareInstance, InodeId, Techniques};
use std::sync::Arc;

/// A name under `dir` whose dentry shard is `want`.
fn pinned_name(dir: InodeId, dist: bool, prefix: &str, want: u16, nservers: usize) -> String {
    (0..)
        .map(|i| format!("{prefix}{i}"))
        .find(|n| dentry_shard(dir, dist, n, nservers) == want)
        .expect("some name hashes to every shard")
}

/// A striped 4-server machine with an 8 KiB stripe unit (2 blocks — small
/// enough that short test files span several stripes).
fn striped_cfg(nservers: usize) -> HareConfig {
    let mut cfg = HareConfig::timeshare(nservers);
    cfg.stripe_width = 4;
    cfg.stripe_unit = 8192;
    cfg
}

/// Deterministic payload for content checks.
fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

/// Reads a whole file back through the normal read path.
fn read_file<P: ProcFs + ?Sized>(c: &P, path: &str) -> fsapi::FsResult<Vec<u8>> {
    let fd = c.open(path, OpenFlags::RDONLY, Mode::default())?;
    let mut out = Vec::new();
    let mut buf = vec![0u8; 8192];
    loop {
        let n = c.read(fd, &mut buf)?;
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    c.close(fd)?;
    Ok(out)
}

#[test]
fn cold_open_and_full_read_is_one_metadata_plus_stripe_exchanges() {
    // THE data-plane contract (the PR-4 follow-up landed): the coalesced
    // open reply carries the block list *and* extent map, so a cold
    // open+read of a co-located striped file is exactly one metadata
    // exchange plus ceil(size / stripe_unit) parallel data exchanges —
    // zero warm-up round trips between open and first byte.
    let inst = HareInstance::start(striped_cfg(4));
    let size = 64 * 1024usize; // 8 stripes of 8 KiB
    let data = pattern(size);
    let setup = inst.new_client(0).unwrap();
    fsapi::write_file(&setup, "/f", &data).unwrap();
    drop(setup);

    let c = inst.new_client(0).unwrap();
    let sends = || inst.machine().msg_stats.sends();

    // One metadata exchange: the coalesced LookupOpen, nothing else.
    let s0 = sends();
    let fd = c.open("/f", OpenFlags::RDONLY, Mode::default()).unwrap();
    assert_eq!(sends() - s0, 2, "open is one exchange, block list included");

    // The full read is exactly one ReadStripe per stripe, no warm-up.
    let s0 = sends();
    let mut buf = vec![0u8; size];
    assert_eq!(c.read(fd, &mut buf).unwrap(), size);
    assert_eq!(sends() - s0, 2 * 8, "ceil(size/stripe_unit) data exchanges");
    assert_eq!(buf, data);

    // EOF and close add nothing beyond the CloseFd round trip (readahead
    // never requests a stripe past EOF).
    let s0 = sends();
    assert_eq!(c.read(fd, &mut buf).unwrap(), 0);
    c.close(fd).unwrap();
    assert_eq!(sends() - s0, 2, "no stray prefetch at EOF");
    drop(c);
    inst.shutdown();
}

#[test]
fn chunked_striped_read_costs_the_same_total_exchanges() {
    // Reading the same file in stripe-sized chunks keeps the pipeline
    // warm across read() calls: still exactly one exchange per stripe.
    let inst = HareInstance::start(striped_cfg(4));
    let size = 64 * 1024usize;
    let data = pattern(size);
    let setup = inst.new_client(0).unwrap();
    fsapi::write_file(&setup, "/f", &data).unwrap();
    drop(setup);

    let c = inst.new_client(0).unwrap();
    let fd = c.open("/f", OpenFlags::RDONLY, Mode::default()).unwrap();
    let before = inst.machine().msg_stats.sends();
    let mut got = Vec::new();
    let mut buf = vec![0u8; 8192];
    loop {
        let n = c.read(fd, &mut buf).unwrap();
        if n == 0 {
            break;
        }
        got.extend_from_slice(&buf[..n]);
    }
    assert_eq!(inst.machine().msg_stats.sends() - before, 2 * 8);
    assert_eq!(got, data);
    c.close(fd).unwrap();
    drop(c);
    inst.shutdown();
}

#[test]
fn striped_write_then_read_round_trips_across_clients() {
    // Striped writes land in shared DRAM immediately, so another client
    // (on another core, with a cold private cache) reads them back
    // byte-for-byte after close — including a short unaligned tail.
    let inst = HareInstance::start(striped_cfg(4));
    let size = 3 * 8192 + 777usize; // 4 stripes, short last one
    let data = pattern(size);
    let w = inst.new_client(0).unwrap();
    fsapi::write_file(&w, "/x", &data).unwrap();
    drop(w);
    let r = inst.new_client(1).unwrap();
    assert_eq!(read_file(&r, "/x").unwrap(), data);
    // Overwrite-in-place through a second descriptor, then re-read.
    let fd = r.open("/x", OpenFlags::WRONLY, Mode::default()).unwrap();
    assert_eq!(r.write(fd, b"HELLO").unwrap(), 5);
    r.close(fd).unwrap();
    let mut want = data.clone();
    want[..5].copy_from_slice(b"HELLO");
    assert_eq!(read_file(&r, "/x").unwrap(), want);
    drop(r);
    inst.shutdown();
}

#[test]
fn fused_create_is_one_exchange_on_a_chained_path() {
    // The Create chain terminal: a cold open(O_CREAT) of a deep path is
    // the resolution chain and nothing else — the final server creates
    // the dentry, inode, and descriptor in the miss it would otherwise
    // report. Fusion off pays the chain plus the separate create.
    let nservers = 4usize;
    let sends_for = |fused: bool| {
        let mut cfg = HareConfig::timeshare(nservers);
        if !fused {
            cfg.techniques = Techniques::without("fused_terminal");
        }
        let inst = HareInstance::start(cfg);
        let setup = inst.new_client(0).unwrap();
        fsapi::mkdir_p(&setup, "/c0/c1", MkdirOpts::DISTRIBUTED).unwrap();
        let shards = [dentry_shard(InodeId::ROOT, true, "c0", nservers), {
            let st = setup.stat("/c0").unwrap();
            let ino = InodeId {
                server: st.server,
                num: st.ino,
            };
            dentry_shard(ino, true, "c1", nservers)
        }];
        let st = setup.stat("/c0/c1").unwrap();
        let dir = InodeId {
            server: st.server,
            num: st.ino,
        };
        let fshard = dentry_shard(dir, true, "fresh", nservers);
        drop(setup);
        let full = [shards[0], shards[1], fshard];
        let runs = 1 + full.windows(2).filter(|w| w[0] != w[1]).count() as u64;

        let c = inst.new_client(0).unwrap();
        let before = inst.machine().msg_stats.sends();
        let fd = c
            .open(
                "/c0/c1/fresh",
                OpenFlags::CREAT | OpenFlags::WRONLY,
                Mode::default(),
            )
            .unwrap();
        let create_sends = inst.machine().msg_stats.sends() - before;
        c.close(fd).unwrap();
        assert_eq!(c.stat("/c0/c1/fresh").unwrap().size, 0);

        // Second cold client, name now exists: the same fused chain
        // degrades to an open of the existing file — still one pass.
        let c2 = inst.new_client(1).unwrap();
        let before = inst.machine().msg_stats.sends();
        let fd = c2
            .open(
                "/c0/c1/fresh",
                OpenFlags::CREAT | OpenFlags::WRONLY,
                Mode::default(),
            )
            .unwrap();
        let reopen_sends = inst.machine().msg_stats.sends() - before;
        c2.close(fd).unwrap();
        drop(c2);
        drop(c);
        inst.shutdown();
        (runs, create_sends, reopen_sends)
    };

    let (runs, fused_create, fused_reopen) = sends_for(true);
    // One chain: request + (runs - 1) forwards + reply. The create adds
    // zero messages (single socket: affinity places the inode at the
    // final chain server).
    assert_eq!(fused_create, runs + 1, "fused cold create is one exchange");
    assert_eq!(fused_reopen, runs + 1, "existing name: still one pass");

    let (_, unfused_create, _) = sends_for(false);
    assert!(
        unfused_create > fused_create,
        "fusion must save exchanges ({unfused_create} vs {fused_create})"
    );
}

#[test]
fn data_plane_toggles_off_reproduce_the_paper_layout_counts() {
    // The whole scripted workload — create, striped-sized writes, cold
    // re-open, chunked reads, stat, unlink — must cost byte-for-byte the
    // same message count with (a) the default all-blocks-home layout,
    // (b) stripe_width set but the striping toggle off, and (c) the
    // readahead toggle off at width 1. The striped run (d) must differ:
    // the toggle is live, the others prove it is inert.
    let count = |cfg: HareConfig| {
        let inst = HareInstance::start(cfg);
        let c = inst.new_client(0).unwrap();
        let before = inst.machine().msg_stats.sends();
        let data = pattern(40 * 1024);
        fsapi::write_file(&c, "/w", &data).unwrap();
        let r = inst.new_client(1).unwrap();
        assert_eq!(read_file(&r, "/w").unwrap(), data);
        c.stat("/w").unwrap();
        c.unlink("/w").unwrap();
        let sends = inst.machine().msg_stats.sends() - before;
        drop(r);
        drop(c);
        inst.shutdown();
        sends
    };
    let base = count(HareConfig::timeshare(4));
    let mut off = HareConfig::timeshare(4);
    off.stripe_width = 4;
    off.techniques = Techniques::without("striping");
    assert_eq!(count(off), base, "striping off must be the seed protocol");
    let mut no_ra = HareConfig::timeshare(4);
    no_ra.techniques = Techniques::without("readahead");
    assert_eq!(count(no_ra), base, "readahead is inert at width 1");
    let mut on = HareConfig::timeshare(4);
    on.stripe_width = 4;
    assert_ne!(count(on), base, "width 4 must actually change the protocol");
}

// ----- migration × striping ------------------------------------------------

#[test]
fn migrating_a_directory_of_striped_files_keeps_extents_intact() {
    // Extent maps are derived from the *inode* id and the knobs — never
    // from the dentry shard — so migrating the directory moves name
    // service only: every striped file reads back byte-for-byte through
    // the same stripe servers, from stale and fresh clients alike.
    let nservers = 4;
    let inst = HareInstance::start(striped_cfg(nservers));
    let setup = inst.new_client(0).unwrap();
    setup
        .mkdir_opts("/hot", Mode::default(), MkdirOpts::default())
        .unwrap();
    let files: Vec<(String, Vec<u8>)> = (0..4)
        .map(|i| {
            let path = format!("/hot/s{i}");
            let data = pattern(3 * 8192 + i * 100);
            fsapi::write_file(&setup, &path, &data).unwrap();
            (path, data)
        })
        .collect();
    let home = setup.stat("/hot").unwrap().server;
    let to = (home + 1) % nservers as u16;

    // A stale client with a warm route and a descriptor opened before
    // the migration.
    let stale = inst.new_client(1).unwrap();
    let (held_path, held_data) = &files[0];
    let held = stale
        .open(held_path, OpenFlags::RDONLY, Mode::default())
        .unwrap();

    assert!(setup.migrate_dir("/hot", to).unwrap());
    assert_eq!(setup.dir_owner("/hot").unwrap(), to);

    // The pre-migration descriptor streams on untouched (stripe I/O is
    // addressed by the extent map, not the dentry owner)...
    let mut buf = vec![0u8; held_data.len()];
    assert_eq!(stale.read(held, &mut buf).unwrap(), held_data.len());
    assert_eq!(&buf, held_data);
    stale.close(held).unwrap();
    // ...and re-resolving every file (one NotOwner bounce at most) still
    // finds the same bytes.
    for (path, data) in &files {
        assert_eq!(&read_file(&stale, path).unwrap(), data);
    }
    let fresh = inst.new_client(2).unwrap();
    for (path, data) in &files {
        assert_eq!(&read_file(&fresh, path).unwrap(), data);
    }
    drop(fresh);
    drop(stale);
    drop(setup);
    inst.shutdown();
}

#[test]
fn migration_into_rmdir_marked_destination_still_eagains_with_striping() {
    // The pinned MigrateInstall-vs-rmdir race from the placement suite,
    // re-run with striped extents in the directory: the install under a
    // mark is still rejected with EAGAIN, the abort leaves every striped
    // file readable, and the retry after the rmdir resolves goes through.
    // Op tracing is on: the EAGAIN unwind must close every span it opened
    // (the leak assertion at the bottom).
    use hare_core::proto::{Reply, Request, ServerMsg};
    let nservers = 2;
    let mut cfg = striped_cfg(nservers); // width clamps to 2 servers
    cfg.stripe_unit = 8192;
    cfg.trace_ops = true;
    let inst = HareInstance::start(cfg);
    let setup = inst.new_client(0).unwrap();
    setup
        .mkdir_opts("/hot", Mode::default(), MkdirOpts::default())
        .unwrap();
    let data = pattern(4 * 8192);
    for i in 0..3 {
        fsapi::write_file(&setup, &format!("/hot/f{i}"), &data).unwrap();
    }
    let hstat = setup.stat("/hot").unwrap();
    let (home, dir) = (
        hstat.server,
        InodeId {
            server: hstat.server,
            num: hstat.ino,
        },
    );
    let to = (home + 1) % 2;

    let raw = |server: usize, req: Request| {
        let (tx, rx) = msg::channel(Arc::clone(&inst.machine().msg_stats));
        inst.servers()[server]
            .tx
            .send(
                ServerMsg {
                    req,
                    reply: tx,
                    span: None,
                },
                0,
                0,
            )
            .unwrap();
        rx.recv().unwrap().payload
    };
    match raw(to as usize, Request::RmdirMark { dir }) {
        Ok(Reply::RmdirMark(_)) => {}
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(
        setup.migrate_dir("/hot", to).unwrap_err(),
        Errno::EAGAIN,
        "install under an rmdir mark must be rejected"
    );
    assert_eq!(setup.dir_owner("/hot").unwrap(), home);
    for i in 0..3 {
        assert_eq!(read_file(&setup, &format!("/hot/f{i}")).unwrap(), data);
    }
    match raw(to as usize, Request::RmdirAbort { dir }) {
        Ok(Reply::Unit) => {}
        other => panic!("unexpected {other:?}"),
    }
    assert!(setup.migrate_dir("/hot", to).unwrap());
    for i in 0..3 {
        assert_eq!(read_file(&setup, &format!("/hot/f{i}")).unwrap(), data);
    }
    drop(setup);
    inst.shutdown();
    assert_eq!(
        inst.machine().otrace.open_spans(),
        0,
        "the EAGAIN unwind must close every span it opened"
    );
    assert!(inst.machine().otrace.op_count() > 0, "the run was traced");
}

#[test]
fn striped_churn_across_migration_lands_every_write_once_and_leaks_no_blocks() {
    // Worker threads create, stream, verify, and unlink striped files
    // while the directory migrates twice. Parked creates/unlinks replay
    // exactly once (content stays byte-exact, nothing duplicates), and
    // afterwards — with every file unlinked — each server's partition
    // must be reclaimable to the last block: any stranded extent shows
    // up as ENOSPC when a full-partition file is written at that server.
    let nservers = 4usize;
    let mut cfg = striped_cfg(nservers);
    cfg.dram_blocks = 128 * nservers; // small partitions: leaks are loud
    let inst = HareInstance::start(cfg);
    let setup = inst.new_client(0).unwrap();
    setup
        .mkdir_opts("/hot", Mode::default(), MkdirOpts::default())
        .unwrap();
    let home = setup.stat("/hot").unwrap().server;
    let to = (home + 1) % nservers as u16;

    let workers = 3;
    let rounds = 12;
    let mut joins = Vec::new();
    for w in 0..workers {
        let inst = Arc::clone(&inst);
        joins.push(std::thread::spawn(move || {
            let c = inst.new_client(w % 4).unwrap();
            let data = pattern(3 * 8192 + w * 64);
            for i in 0..rounds {
                let p = format!("/hot/w{w}_{i}");
                fsapi::write_file(&c, &p, &data).unwrap();
                assert_eq!(
                    read_file(&c, &p).unwrap(),
                    data,
                    "striped content must land exactly once"
                );
                c.unlink(&p).unwrap();
            }
            drop(c);
        }));
    }
    let admin = inst.new_client(3).unwrap();
    assert!(admin.migrate_dir("/hot", to).unwrap());
    assert!(admin.migrate_dir("/hot", home).unwrap());
    for j in joins {
        j.join().unwrap();
    }
    assert_eq!(admin.readdir("/hot").unwrap().len(), 0, "nothing survives");
    admin.rmdir("/hot").unwrap();

    // Exhaustion probe: one full-partition file per server. 128 blocks
    // each — if any extent was stranded by the churn or the migrations,
    // the owning server cannot satisfy this and the write fails ENOSPC.
    for s in 0..nservers as u16 {
        let name = format!(
            "/{}",
            pinned_name(InodeId::ROOT, true, "probe", s, nservers)
        );
        let full = vec![0u8; 128 * 4096];
        fsapi::write_file(&admin, &name, &full).unwrap();
        assert_eq!(admin.stat(&name).unwrap().server, s);
        admin.unlink(&name).unwrap();
    }
    drop(admin);
    drop(setup);
    inst.shutdown();
}
