//! Integration tests for read replication of hot dentry shards: replica
//! install/serve/evict protocol, write-through invalidation, interplay
//! with live migration and the three-phase rmdir, and the zero-replica
//! byte-for-byte pin.
//!
//! Counting convention as everywhere: `MsgStats::sends()` counts every
//! message, one request/reply exchange is two sends; the one-way replica
//! maintenance messages (invalidate, evict) cost one send each.

use fsapi::{Errno, MkdirOpts, Mode, ProcFs};
use hare_core::proto::{MarkResult, Reply, Request, ServerMsg};
use hare_core::{HareConfig, HareInstance, InodeId, Techniques};
use std::sync::Arc;

/// Boots `nservers` timeshare cores with a centralized `/hot` directory
/// holding `files` entries, and returns the instance plus the
/// directory's home server.
fn hot_dir_instance(nservers: usize, files: usize) -> (Arc<HareInstance>, u16) {
    let inst = HareInstance::start(HareConfig::timeshare(nservers));
    let setup = inst.new_client(0).unwrap();
    setup
        .mkdir_opts("/hot", Mode::default(), MkdirOpts::CENTRALIZED)
        .unwrap();
    for i in 0..files {
        fsapi::write_file(&setup, &format!("/hot/f{i}"), b"payload").unwrap();
    }
    let home = setup.stat("/hot").unwrap().server;
    drop(setup);
    (inst, home)
}

/// Replicates `/hot` onto every server except its home (up to `n`
/// copies), returning the driver client (which holds the full replica
/// advertisement) and the replica servers.
fn replicate_all(
    inst: &Arc<HareInstance>,
    home: u16,
    n: usize,
) -> (hare_core::ClientLib, Vec<u16>) {
    let admin = inst.new_client(0).unwrap();
    let nservers = inst.servers().len() as u16;
    let mut replicas = Vec::new();
    for s in 0..nservers {
        if s == home || replicas.len() == n {
            continue;
        }
        assert!(admin.replicate_dir("/hot", s).unwrap());
        replicas.push(s);
    }
    (admin, replicas)
}

/// Sends one raw request to a server, bypassing the client library.
fn raw(inst: &Arc<HareInstance>, server: u16, req: Request) -> Result<Reply, Errno> {
    let (tx, rx) = msg::channel(Arc::clone(&inst.machine().msg_stats));
    inst.servers()[server as usize]
        .tx
        .send(
            ServerMsg {
                req,
                reply: tx,
                span: None,
            },
            0,
            0,
        )
        .unwrap();
    rx.recv().unwrap().payload
}

#[test]
fn replicated_listings_spread_over_the_read_set_at_flat_cost() {
    let nservers = 4;
    let nfiles = 6;
    let (inst, home) = hot_dir_instance(nservers, nfiles);
    let (admin, replicas) = replicate_all(&inst, home, 3);
    assert_eq!(replicas.len(), 3);

    // A reader that adopted the advertisement: its listings rotate over
    // all four read-set members (local least-loaded selection), each one
    // still exactly one ListShard exchange — replica routing costs no
    // extra messages and no NotOwner bounces.
    let ino = admin.dir_inode("/hot").unwrap();
    let (set, epoch) = admin.replica_advert(ino).expect("advert after replicate");
    assert_eq!(set.len(), 3);
    let reader = inst.new_client(1).unwrap();
    assert!(reader.adopt_replicas(ino, set, epoch));
    reader.stat("/hot").unwrap(); // warm the path to isolate the listings

    let _ = reader.server_loads(true).unwrap(); // reset the load windows
    let before = inst.machine().msg_stats.sends();
    for _ in 0..8 {
        assert_eq!(reader.readdir("/hot").unwrap().len(), nfiles);
    }
    assert_eq!(
        inst.machine().msg_stats.sends() - before,
        2 * 8,
        "every listing is one exchange, from whichever member serves it"
    );
    // Every read-set member took a share (8 listings over 4 servers:
    // round-robin of the local load counters = exactly 2 each).
    let loads = reader.server_loads(false).unwrap();
    for s in std::iter::once(home).chain(replicas.iter().copied()) {
        assert_eq!(
            loads[s as usize].ops, 2,
            "server {s} must serve its share of the listings"
        );
    }
    drop(reader);
    drop(admin);
    inst.shutdown();
}

#[test]
fn stale_replica_storm_one_write_then_no_reader_sees_the_old_entry() {
    // Every replica holds the entry, many clients read through the whole
    // read set — then ONE write. After the writer has its reply (and one
    // serializing exchange lets the one-way invalidations drain, as in
    // the migration redirect-storm test), no reader may observe the old
    // state from any member, and the new state is visible everywhere.
    let nservers = 4;
    let (inst, home) = hot_dir_instance(nservers, 4);
    let (admin, _) = replicate_all(&inst, home, 3);
    let ino = admin.dir_inode("/hot").unwrap();
    let advert = admin.replica_advert(ino).unwrap();

    let readers: Vec<_> = (0..4)
        .map(|i| {
            let c = inst.new_client(i % nservers).unwrap();
            c.adopt_replicas(ino, advert.0.clone(), advert.1);
            // Warm every member: one listing per read-set slot.
            for _ in 0..4 {
                assert_eq!(c.readdir("/hot").unwrap().len(), 4);
            }
            c
        })
        .collect();

    // The storm's one write: f0 dies, g is born.
    let writer = inst.new_client(0).unwrap();
    writer.unlink("/hot/f0").unwrap();
    fsapi::write_file(&writer, "/hot/g", b"new").unwrap();
    let _ = writer.server_loads(false).unwrap();

    for c in &readers {
        // 4 probes per reader walk its whole read set (selection is a
        // local round-robin over the least-loaded counters).
        for _ in 0..4 {
            assert_eq!(
                c.stat("/hot/f0").unwrap_err(),
                Errno::ENOENT,
                "a replica served the unlinked entry"
            );
            assert_eq!(c.stat("/hot/g").unwrap().size, 3);
            let names: Vec<String> = c
                .readdir("/hot")
                .unwrap()
                .into_iter()
                .map(|e| e.name)
                .collect();
            assert!(!names.contains(&"f0".to_string()));
            assert!(names.contains(&"g".to_string()));
        }
    }
    drop(writer);
    drop(readers);
    drop(admin);
    inst.shutdown();
}

#[test]
fn migration_evicts_replicas_and_replica_readers_rejoin_the_new_home() {
    let nservers = 4;
    let nfiles = 5;
    let (inst, home) = hot_dir_instance(nservers, nfiles);
    let (admin, replicas) = replicate_all(&inst, home, 2);
    let ino = admin.dir_inode("/hot").unwrap();
    let advert = admin.replica_advert(ino).unwrap();

    // A reader mid-flight on the replica set.
    let reader = inst.new_client(1).unwrap();
    reader.adopt_replicas(ino, advert.0.clone(), advert.1);
    assert_eq!(reader.readdir("/hot").unwrap().len(), nfiles);

    // Live migration to a server that held one of the copies: the copy
    // dies before the snapshot is taken, so the moved shard is the only
    // authority at the destination.
    let to = replicas[0];
    assert!(admin.migrate_dir("/hot", to).unwrap());
    assert_eq!(admin.dir_owner("/hot").unwrap(), to);
    assert_eq!(
        admin.routing_replica_dirs(),
        0,
        "the driver's own replica record dies with the migration epoch"
    );
    let _ = admin.server_loads(false).unwrap();

    // The reader still routes reads across the stale set: each member
    // answers a replica-aware NotOwner pointing home, the chain of
    // learns converges, and no operation fails or loses entries.
    for _ in 0..6 {
        assert_eq!(reader.readdir("/hot").unwrap().len(), nfiles);
        assert_eq!(reader.stat("/hot/f0").unwrap().size, 7);
    }
    // Writes follow the moved home too.
    fsapi::write_file(&reader, "/hot/post", b"x").unwrap();
    assert_eq!(reader.stat("/hot/post").unwrap().server, to);
    drop(reader);
    drop(admin);
    inst.shutdown();
}

#[test]
fn rmdir_evicts_replicas_and_serves_tombstone_enoent() {
    // An (empty) replicated directory is removed: the copies die before
    // the tombstone lands, so a reader that still advertises the old
    // read set gets ENOENT — never a listing served from a surviving
    // copy of a deleted directory.
    let nservers = 4;
    let (inst, home) = hot_dir_instance(nservers, 0);
    let (admin, _) = replicate_all(&inst, home, 3);
    let ino = admin.dir_inode("/hot").unwrap();
    let advert = admin.replica_advert(ino).unwrap();

    let reader = inst.new_client(1).unwrap();
    reader.adopt_replicas(ino, advert.0.clone(), advert.1);
    assert_eq!(reader.readdir("/hot").unwrap().len(), 0);

    let remover = inst.new_client(2).unwrap();
    remover.rmdir("/hot").unwrap();
    let _ = remover.server_loads(false).unwrap();

    // The reader walks its whole stale read set: tombstone ENOENT from
    // every angle, for listings and lookups alike.
    for _ in 0..4 {
        assert_eq!(reader.readdir("/hot").unwrap_err(), Errno::ENOENT);
        assert_eq!(reader.stat("/hot/ghost").unwrap_err(), Errno::ENOENT);
    }
    // The name is reusable, and the recreated directory starts
    // unreplicated.
    remover.mkdir("/hot", Mode::default()).unwrap();
    fsapi::write_file(&remover, "/hot/fresh", b"y").unwrap();
    assert_eq!(reader.readdir("/hot").unwrap().len(), 1);
    drop(reader);
    drop(remover);
    drop(admin);
    inst.shutdown();
}

#[test]
fn replica_protocol_rejects_rmdir_windows_inline_and_parks_no_continuation() {
    // Both halves of the replication handshake must REJECT with EAGAIN
    // while an rmdir window is open — inline, never parked, the same
    // wait-cycle discipline as the pinned MigrateInstall-vs-rmdir guard
    // (which `migration_into_an_rmdir_marked_destination_aborts_cleanly`
    // in tests/placement.rs keeps pinned).
    let nservers = 3;
    let (inst, home) = hot_dir_instance(nservers, 0);
    let admin = inst.new_client(0).unwrap();
    admin.stat("/hot").unwrap();
    let hstat = admin.stat("/hot").unwrap();
    let dir = InodeId {
        server: hstat.server,
        num: hstat.ino,
    };
    let to = (home + 1) % nservers as u16;

    // Export side: the HOME is mid-rmdir.
    match raw(&inst, home, Request::RmdirMark { dir }) {
        Ok(Reply::RmdirMark(MarkResult::Marked)) => {}
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(
        admin.replicate_dir("/hot", to).unwrap_err(),
        Errno::EAGAIN,
        "export under an rmdir mark must be rejected inline"
    );
    match raw(&inst, home, Request::RmdirAbort { dir }) {
        Ok(Reply::Unit) => {}
        other => panic!("unexpected {other:?}"),
    }

    // Install side: the DESTINATION is mid-rmdir. The driver unwinds the
    // half-registered copy with a ReplicaDrop, so the failed attempt
    // leaves no replica behind.
    match raw(&inst, to, Request::RmdirMark { dir }) {
        Ok(Reply::RmdirMark(MarkResult::Marked)) => {}
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(
        admin.replicate_dir("/hot", to).unwrap_err(),
        Errno::EAGAIN,
        "install under an rmdir mark must be rejected inline"
    );
    assert_eq!(
        admin.routing_replica_dirs(),
        0,
        "failed install must unwind"
    );
    match raw(&inst, to, Request::RmdirAbort { dir }) {
        Ok(Reply::Unit) => {}
        other => panic!("unexpected {other:?}"),
    }

    // With both windows closed the same replication goes through.
    assert!(admin.replicate_dir("/hot", to).unwrap());
    assert_eq!(admin.routing_replica_dirs(), 1);
    drop(admin);
    inst.shutdown();
}

#[test]
fn pinned_replication_exchange_counts() {
    // The replication handshake is two exchanges: ReplicaExport
    // (snapshot + registration at the home) and ReplicaInstall (copy at
    // the recipient) — four sends, nothing else, when the driver already
    // routes to the home. Re-replicating onto a known member is free.
    let nservers = 2;
    let (inst, home) = hot_dir_instance(nservers, 3);
    let admin = inst.new_client(0).unwrap();
    admin.stat("/hot").unwrap(); // warm the route
    let to = (home + 1) % 2;
    let before = inst.machine().msg_stats.sends();
    assert!(admin.replicate_dir("/hot", to).unwrap());
    assert_eq!(
        inst.machine().msg_stats.sends() - before,
        4,
        "replication must cost exactly two exchanges"
    );
    let before = inst.machine().msg_stats.sends();
    assert!(!admin.replicate_dir("/hot", to).unwrap());
    assert_eq!(
        inst.machine().msg_stats.sends() - before,
        0,
        "an already-placed replica costs nothing"
    );
    drop(admin);
    inst.shutdown();
}

#[test]
fn replicate_dir_refuses_the_root_distributed_dirs_and_files() {
    let inst = HareInstance::start(HareConfig::timeshare(4));
    let c = inst.new_client(0).unwrap();
    c.mkdir_opts("/dist", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    assert_eq!(c.replicate_dir("/dist", 1).unwrap_err(), Errno::EINVAL);
    assert_eq!(c.replicate_dir("/", 1).unwrap_err(), Errno::EBUSY);
    fsapi::write_file(&c, "/plain", b"x").unwrap();
    assert_eq!(c.replicate_dir("/plain", 1).unwrap_err(), Errno::ENOTDIR);
    // Replicating onto the home itself is a no-op, not an error.
    c.mkdir("/solo", Mode::default()).unwrap();
    let home = c.stat("/solo").unwrap().server;
    assert!(!c.replicate_dir("/solo", home).unwrap());
    drop(c);
    inst.shutdown();
}

#[test]
fn replication_off_is_byte_for_byte_the_unreplicated_system() {
    // The same operation sequence — including reads that would consult
    // the read set — with the technique on (but no replica placed) and
    // off must produce identical message counts: the zero-replica,
    // epoch-0 table is the paper's static routing.
    let count = |techniques: Techniques| {
        let mut cfg = HareConfig::timeshare(4);
        cfg.techniques = techniques;
        let inst = HareInstance::start(cfg);
        let c = inst.new_client(0).unwrap();
        let before = inst.machine().msg_stats.sends();
        c.mkdir_opts("/d", Mode::default(), MkdirOpts::CENTRALIZED)
            .unwrap();
        for i in 0..4 {
            fsapi::write_file(&c, &format!("/d/f{i}"), b"x").unwrap();
        }
        for _ in 0..3 {
            assert_eq!(c.readdir("/d").unwrap().len(), 4);
            c.stat("/d/f0").unwrap();
            assert_eq!(c.stat("/d/nope").unwrap_err(), Errno::ENOENT);
        }
        c.rename("/d/f0", "/d/r0").unwrap();
        for i in 1..4 {
            c.unlink(&format!("/d/f{i}")).unwrap();
        }
        c.unlink("/d/r0").unwrap();
        c.rmdir("/d").unwrap();
        let sends = inst.machine().msg_stats.sends() - before;
        drop(c);
        inst.shutdown();
        sends
    };
    assert_eq!(
        count(Techniques::default()),
        count(Techniques::without("replication")),
        "an unused replication subsystem must cost zero messages"
    );
    // And the driver really is inert with the toggle off.
    let mut cfg = HareConfig::timeshare(4);
    cfg.techniques = Techniques::without("replication");
    let inst = HareInstance::start(cfg);
    let c = inst.new_client(0).unwrap();
    c.mkdir("/hot", Mode::default()).unwrap();
    let home = c.stat("/hot").unwrap().server;
    assert!(!c.replicate_dir("/hot", (home + 1) % 4).unwrap());
    assert_eq!(c.routing_replica_dirs(), 0);
    drop(c);
    inst.shutdown();
}
