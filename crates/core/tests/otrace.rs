//! Integration tests for causal op tracing (`hare_core::otrace`).
//!
//! Four properties:
//!
//! * **Sends parity** — tracing disabled is byte-for-byte the untraced
//!   system (same message count, same virtual end time), and enabled it
//!   charges *every* msg-layer send to some span, so tree sums prove the
//!   exchange-count baselines.
//! * **Pinned tree shapes** — a cold depth-8 chained+fused stat, a
//!   replica-routed readdir, and an op parked across a live migration
//!   each assemble the documented span tree, deterministically.
//! * **No leaks** — every scenario ends with zero open spans.

use fsapi::{MkdirOpts, Mode, ProcFs};
use hare_core::proto::{Reply, Request, ServerMsg};
use hare_core::{Cause, HareConfig, HareInstance, InodeId, SpanNode};
use std::sync::Arc;

/// Sends one raw request to a server, bypassing the client library.
fn raw(inst: &Arc<HareInstance>, server: u16, req: Request) -> Reply {
    let (tx, rx) = msg::channel(Arc::clone(&inst.machine().msg_stats));
    inst.servers()[server as usize]
        .tx
        .send(
            ServerMsg {
                req,
                reply: tx,
                span: None,
            },
            0,
            0,
        )
        .unwrap();
    rx.recv().unwrap().payload.unwrap()
}

/// A small mixed workload: namespace, data, listing, teardown.
fn workload(c: &dyn ProcFs) {
    fsapi::mkdir_p(c, "/a/b", MkdirOpts::default()).unwrap();
    fsapi::write_file(c, "/a/b/f", b"hello").unwrap();
    assert_eq!(c.stat("/a/b/f").unwrap().size, 5);
    assert_eq!(&fsapi::read_to_vec(c, "/a/b/f").unwrap(), b"hello");
    assert_eq!(c.readdir("/a/b").unwrap().len(), 1);
    c.unlink("/a/b/f").unwrap();
}

#[test]
fn tracing_disabled_is_byte_for_byte_the_untraced_system() {
    let run = |trace: bool| {
        let mut cfg = HareConfig::timeshare(4);
        cfg.trace_ops = trace;
        let inst = HareInstance::start(cfg);
        let c = inst.new_client(0).unwrap();
        workload(&c);
        let vend = c.vnow();
        drop(c);
        inst.shutdown();
        (inst.machine().msg_stats.sends(), vend)
    };
    let (sends_off, vend_off) = run(false);
    let (sends_on, vend_on) = run(true);
    assert_eq!(sends_off, sends_on, "tracing must not add or remove sends");
    assert_eq!(vend_off, vend_on, "tracing must not move virtual time");
}

#[test]
fn span_tree_sums_equal_the_msg_layer_send_count_exactly() {
    let nservers = 4u64;
    let mut cfg = HareConfig::timeshare(nservers as usize);
    cfg.trace_ops = true;
    let inst = HareInstance::start(cfg);
    let c = inst.new_client(0).unwrap();

    let s0 = inst.machine().msg_stats.sends();
    workload(&c);
    // Detach the client while the servers still answer (its Unregister
    // fan-out is an exchange per server), then join the server threads —
    // that guarantees every one-way send (inval, wakeup) the ops caused
    // has been recorded before the counters are read.
    c.shutdown();
    inst.shutdown();
    let delta = inst.machine().msg_stats.sends() - s0;

    let trees = inst.machine().otrace.op_trees();
    assert!(!trees.is_empty());
    assert_eq!(inst.machine().otrace.open_spans(), 0, "no span may leak");
    let span_sum: u64 = trees.iter().map(|t| t.total_sends()).sum();
    // Everything between the marks was charged to a tree except the
    // bookkeeping outside any op: the client's Unregister fan-out (one
    // exchange per server) and the nservers one-way Shutdown messages.
    assert_eq!(
        span_sum + 2 * nservers + nservers,
        delta,
        "every send must be charged to exactly one span:\n{}",
        trees
            .iter()
            .map(|t| t.render())
            .collect::<Vec<_>>()
            .join("")
    );
}

#[test]
fn depth8_chained_fused_stat_assembles_a_deterministic_tree() {
    // Two identical cold runs must render byte-identical span trees, and
    // the tree must show the chained resolution: hop(s) between dentry
    // servers and the fused terminal executed by the last chain server.
    let run = || {
        let mut cfg = HareConfig::split(8, 4);
        cfg.trace_ops = true;
        let app = cfg.app_cores.clone();
        let inst = HareInstance::start(cfg);
        let setup = inst.new_client(app[0]).unwrap();
        let mut path = String::from("/deep");
        setup
            .mkdir_opts(&path, Mode::default(), MkdirOpts::DISTRIBUTED)
            .unwrap();
        for level in 0..5 {
            path = format!("{path}/d{level}");
            setup
                .mkdir_opts(&path, Mode::default(), MkdirOpts::DISTRIBUTED)
                .unwrap();
        }
        let file = format!("{path}/f"); // 8 components: deep,d0..d4,f
        fsapi::write_file(&setup, &file, b"x").unwrap();
        drop(setup);

        inst.machine().otrace.reset();
        let c = inst.new_client(app[1]).unwrap();
        let s0 = inst.machine().msg_stats.sends();
        assert_eq!(c.stat(&file).unwrap().size, 1);
        c.shutdown();
        inst.shutdown();
        let delta = inst.machine().msg_stats.sends() - s0;

        let trees = inst.machine().otrace.op_trees();
        assert_eq!(inst.machine().otrace.open_spans(), 0);
        let stat = trees
            .iter()
            .find(|t| t.label == "stat")
            .expect("the traced stat");
        // The chain nests: resolve -> chain hop(s) -> fused terminal.
        let causes = stat.causes();
        assert!(causes.contains(&Cause::Resolve), "{causes:?}");
        assert!(causes.contains(&Cause::ChainHop), "{causes:?}");
        assert!(causes.contains(&Cause::Terminal), "{causes:?}");
        assert!(
            stat.depth() >= 3,
            "chained tree must nest: {}",
            stat.render()
        );
        assert!(
            stat.render().contains("fused_terminal"),
            "{}",
            stat.render()
        );
        // The tree accounts for the whole cold stat; outside it the delta
        // holds only the client's Unregister fan-out (2 sends × 4
        // servers) and the 4 one-way Shutdown messages.
        assert_eq!(stat.total_sends() + 12, delta, "{}", stat.render());
        (stat.render(), inst.machine().otrace.to_chrome_json())
    };
    let (render_a, chrome_a) = run();
    let (render_b, chrome_b) = run();
    assert_eq!(render_a, render_b, "span trees must replay identically");
    assert_eq!(chrome_a, chrome_b, "chrome JSON must replay identically");
}

#[test]
fn replica_routed_readdir_carries_the_replica_read_cause() {
    let nservers = 4u16;
    let nfiles = 4usize;
    let mut cfg = HareConfig::timeshare(nservers as usize);
    cfg.trace_ops = true;
    let inst = HareInstance::start(cfg);
    let admin = inst.new_client(0).unwrap();
    admin
        .mkdir_opts("/hot", Mode::default(), MkdirOpts::CENTRALIZED)
        .unwrap();
    for i in 0..nfiles {
        fsapi::write_file(&admin, &format!("/hot/f{i}"), b"x").unwrap();
    }
    let home = admin.stat("/hot").unwrap().server;
    for s in 0..nservers {
        if s != home {
            assert!(admin.replicate_dir("/hot", s).unwrap());
        }
    }
    let ino = admin.dir_inode("/hot").unwrap();
    let (set, epoch) = admin.replica_advert(ino).expect("advert after replicate");
    let reader = inst.new_client(1).unwrap();
    assert!(reader.adopt_replicas(ino, set, epoch));
    reader.stat("/hot").unwrap(); // warm the path: isolate the listings
    let _ = reader.server_loads(true).unwrap(); // reset the load windows

    inst.machine().otrace.reset();
    for _ in 0..8 {
        assert_eq!(reader.readdir("/hot").unwrap().len(), nfiles);
    }
    drop(reader);
    drop(admin);
    inst.shutdown();

    let trees = inst.machine().otrace.op_trees();
    assert_eq!(inst.machine().otrace.open_spans(), 0);
    let readdirs: Vec<&SpanNode> = trees.iter().filter(|t| t.label == "readdir").collect();
    assert_eq!(readdirs.len(), 8);
    // The reader rotates over the whole read set (8 listings over 4
    // members = 2 each), so 6 listings are served by a replica member —
    // and each such listing's request span is tagged ReplicaRead.
    let replica_reads = readdirs
        .iter()
        .filter(|t| t.causes().contains(&Cause::ReplicaRead))
        .count();
    assert_eq!(
        replica_reads, 6,
        "rotation over 3 replicas + home must route 6 of 8 listings to \
         replicas"
    );
    for t in &readdirs {
        assert_eq!(
            t.total_sends(),
            2,
            "replica routing costs no extra messages: {}",
            t.render()
        );
    }
}

#[test]
fn op_parked_across_a_live_migration_replays_and_redirects_in_one_tree() {
    let mut cfg = HareConfig::timeshare(2);
    cfg.trace_ops = true;
    let inst = HareInstance::start(cfg);
    let setup = inst.new_client(0).unwrap();
    setup
        .mkdir_opts("/hot", Mode::default(), MkdirOpts::CENTRALIZED)
        .unwrap();
    fsapi::write_file(&setup, "/hot/f", b"x").unwrap();
    let hstat = setup.stat("/hot").unwrap();
    let home = hstat.server;
    let dir = InodeId {
        server: hstat.server,
        num: hstat.ino,
    };
    let to = (home + 1) % 2;

    // A victim whose route to /hot is warm, so its listing goes straight
    // to the (about to be migrating) home server.
    let victim = inst.new_client(1).unwrap();
    victim.stat("/hot").unwrap();

    inst.machine().otrace.reset();
    let bounces0 = inst.machine().events.snapshot().3;

    // Drive the migration protocol raw so the copy window stays open
    // while the victim's listing arrives: BEGIN parks the shard ...
    let (epoch, entries) = match raw(&inst, home, Request::MigrateBegin { dir }) {
        Reply::MigrateSnapshot { epoch, entries } => (epoch, entries),
        other => panic!("unexpected {other:?}"),
    };
    let join = std::thread::spawn(move || {
        assert_eq!(victim.readdir("/hot").unwrap().len(), 1);
        victim
    });
    // ... the listing parks (its "(parked)" leaf appears in the tree) ...
    let parked = |inst: &Arc<HareInstance>| {
        inst.machine()
            .otrace
            .op_trees()
            .iter()
            .any(|t| t.render().contains("(parked)"))
    };
    while !parked(&inst) {
        std::thread::yield_now();
    }
    // ... and INSTALL + COMMIT move the shard and replay the parked op,
    // which now answers NotOwner and redirects the victim.
    match raw(
        &inst,
        to,
        Request::MigrateInstall {
            dir,
            epoch: epoch + 1,
            entries,
        },
    ) {
        Reply::Unit => {}
        other => panic!("unexpected {other:?}"),
    }
    match raw(
        &inst,
        home,
        Request::MigrateCommit {
            dir,
            epoch: epoch + 1,
            to,
        },
    ) {
        Reply::Unit => {}
        other => panic!("unexpected {other:?}"),
    }
    let victim = join.join().unwrap();
    drop(victim);
    drop(setup);
    inst.shutdown();

    let trees = inst.machine().otrace.op_trees();
    assert_eq!(inst.machine().otrace.open_spans(), 0, "no span may leak");
    let tree = trees
        .iter()
        .find(|t| t.render().contains("(parked)"))
        .expect("the parked listing's tree");
    assert_eq!(tree.label, "readdir");
    let causes = tree.causes();
    assert!(
        causes.contains(&Cause::ParkReplay),
        "the replay must attach to the same tree: {}",
        tree.render()
    );
    assert!(
        causes.contains(&Cause::Redirect),
        "the post-migration retry must be tagged: {}",
        tree.render()
    );
    // The event counters saw the same story.
    let (_, _, _, bounces, parks) = inst.machine().events.snapshot();
    assert!(bounces > bounces0, "the replayed op bounced NotOwner");
    assert!(parks >= 1, "the park was replayed");
}
