//! End-to-end tests of the remote execution protocol: spawn, descriptor
//! inheritance, exit-status proxying, signals.

use fsapi::{write_file, Fd, Mode, OpenFlags, ProcFs, ProcHandle, System};
use hare_core::HareConfig;
use hare_sched::{HareSystem, SIGTERM};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn spawn_runs_on_other_cores_and_returns_status() {
    let sys = HareSystem::start(HareConfig::timeshare(4));
    let root = sys.start_proc();
    let parent_core = root.core();

    let cores = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let mut joins = Vec::new();
    for i in 0..6 {
        let cores = Arc::clone(&cores);
        joins.push(
            root.spawn(Box::new(move |p| {
                cores.lock().push(p.core());
                i * 10
            }))
            .unwrap(),
        );
    }
    let statuses: Vec<i32> = joins.into_iter().map(|j| j.wait()).collect();
    assert_eq!(statuses, vec![0, 10, 20, 30, 40, 50]);

    let used: std::collections::HashSet<usize> = cores.lock().iter().copied().collect();
    assert!(
        used.len() > 1,
        "round-robin must place children on several cores (parent on {parent_core}, used {used:?})"
    );
    drop(root);
    sys.shutdown();
}

#[test]
fn children_share_parent_descriptor_offset() {
    // The tar/extract idiom (paper §2.2): parent opens a file, children
    // inherit the descriptor and read *disjoint* chunks because the offset
    // is shared at the server.
    let sys = HareSystem::start(HareConfig::timeshare(4));
    let root = sys.start_proc();

    let data: Vec<u8> = (0..4000u32).map(|i| (i % 256) as u8).collect();
    write_file(&root, "/archive", &data).unwrap();
    let fd = root
        .open("/archive", OpenFlags::RDONLY, Mode::default())
        .unwrap();

    let total = Arc::new(AtomicUsize::new(0));
    let mut joins = Vec::new();
    for _ in 0..4 {
        let total = Arc::clone(&total);
        joins.push(
            root.spawn(Box::new(move |p| {
                // Each child reads 1000 bytes through the inherited fd.
                let mut buf = vec![0u8; 1000];
                let mut got = 0;
                while got < 1000 {
                    let n = p.read(Fd(fd.0), &mut buf[got..]).unwrap();
                    if n == 0 {
                        break;
                    }
                    got += n;
                }
                total.fetch_add(got, Ordering::SeqCst);
                0
            }))
            .unwrap(),
        );
    }
    for j in joins {
        assert_eq!(j.wait(), 0);
    }
    // All 4000 bytes were consumed exactly once across the children.
    assert_eq!(total.load(Ordering::SeqCst), 4000);
    // The shared offset is at EOF for the parent too.
    let mut buf = [0u8; 8];
    assert_eq!(root.read(fd, &mut buf).unwrap(), 0, "offset shared: EOF");
    root.close(fd).unwrap();
    drop(root);
    sys.shutdown();
}

#[test]
fn jobserver_pipe_across_processes() {
    // make's jobserver (paper §5.2): tokens in a shared pipe bound the
    // number of concurrently running jobs.
    let sys = HareSystem::start(HareConfig::timeshare(4));
    let root = sys.start_proc();
    let (r, w) = root.pipe().unwrap();
    // Two job tokens.
    root.write(w, b"TT").unwrap();

    let peak = Arc::new(AtomicUsize::new(0));
    let cur = Arc::new(AtomicUsize::new(0));
    let mut joins = Vec::new();
    for _ in 0..6 {
        let peak = Arc::clone(&peak);
        let cur = Arc::clone(&cur);
        joins.push(
            root.spawn(Box::new(move |p| {
                // Acquire a token (blocks when both are taken).
                let mut tok = [0u8; 1];
                assert_eq!(p.read(Fd(r.0), &mut tok).unwrap(), 1);
                let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(5));
                cur.fetch_sub(1, Ordering::SeqCst);
                // Return the token.
                p.write(Fd(w.0), &tok).unwrap();
                0
            }))
            .unwrap(),
        );
    }
    for j in joins {
        assert_eq!(j.wait(), 0);
    }
    assert!(
        peak.load(Ordering::SeqCst) <= 2,
        "jobserver must bound concurrency at the token count"
    );
    root.close(r).unwrap();
    root.close(w).unwrap();
    drop(root);
    sys.shutdown();
}

#[test]
fn signals_relayed_to_remote_child() {
    let sys = HareSystem::start(HareConfig::timeshare(2));
    let root = sys.start_proc();
    let (join, sig) = root
        .spawn_with_signals(Box::new(|p| {
            let signals = p.signals().expect("spawned child has a signal queue");
            // Poll until SIGTERM arrives (polling IPC, paper §4).
            for _ in 0..10_000 {
                if signals.should_terminate() {
                    return 42;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            1
        }))
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    sig.kill(SIGTERM);
    assert_eq!(join.wait(), 42);
    drop(root);
    sys.shutdown();
}

#[test]
fn nested_spawn_propagates_round_robin() {
    let sys = HareSystem::start(HareConfig::timeshare(4));
    let root = sys.start_proc();
    let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    let j = root
        .spawn(Box::new(move |child| {
            // Grandchildren: placement state was inherited, so they land on
            // successive cores, not all on the same one.
            let mut joins = Vec::new();
            for _ in 0..3 {
                let seen = Arc::clone(&seen2);
                joins.push(
                    child
                        .spawn(Box::new(move |g| {
                            seen.lock().push(g.core());
                            0
                        }))
                        .unwrap(),
                );
            }
            joins.into_iter().map(|j| j.wait()).sum::<i32>()
        }))
        .unwrap();
    assert_eq!(j.wait(), 0);
    let cores = seen.lock().clone();
    let distinct: std::collections::HashSet<usize> = cores.iter().copied().collect();
    assert!(distinct.len() >= 2, "grandchildren spread: {cores:?}");
    drop(root);
    sys.shutdown();
}

#[test]
fn virtual_time_advances_with_work() {
    let sys = HareSystem::start(HareConfig::timeshare(2));
    let root = sys.start_proc();
    let t0 = sys.elapsed_cycles();
    write_file(&root, "/x", &[0u8; 8192]).unwrap();
    let t1 = sys.elapsed_cycles();
    assert!(t1 > t0, "file work must consume virtual time");
    assert_eq!(sys.ncores(), 2);
    drop(root);
    sys.shutdown();
}
