//! The complete Hare system: file servers + scheduling servers + process
//! management, implementing [`fsapi::System`].

use crate::policy::PlacementState;
use crate::proc::HareProc;
use crate::server::{run_sched_server, SchedHandle, SchedMsg};
use fsapi::System;
use hare_core::{HareConfig, HareInstance};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{mpsc, Arc};

/// A booted Hare machine with its per-core scheduling servers.
pub struct HareSystem {
    inst: Arc<HareInstance>,
    scheds: HashMap<usize, SchedHandle>,
    sched_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    proc_threads: Mutex<mpsc::Receiver<std::thread::JoinHandle<()>>>,
    /// Weak self-reference so processes can hold the system alive
    /// (installed by `Arc::new_cyclic` at start).
    self_ref: std::sync::Weak<HareSystem>,
}

impl HareSystem {
    /// Boots file servers and one scheduling server per application core.
    pub fn start(cfg: HareConfig) -> Arc<HareSystem> {
        let inst = HareInstance::start(cfg);
        let (pt_tx, pt_rx) = mpsc::channel();
        Arc::new_cyclic(|weak| {
            let mut scheds = HashMap::new();
            let mut threads = Vec::new();
            for &core in &inst.config().app_cores {
                let (tx, rx) = msg::channel::<SchedMsg>(Arc::clone(&inst.machine().msg_stats));
                let w = weak.clone();
                let pt = pt_tx.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("hare-sched-{core}"))
                        .spawn(move || run_sched_server(w, core, rx, pt))
                        .expect("spawn sched server"),
                );
                scheds.insert(core, SchedHandle { core, tx });
            }
            HareSystem {
                inst,
                scheds,
                sched_threads: Mutex::new(threads),
                proc_threads: Mutex::new(pt_rx),
                self_ref: weak.clone(),
            }
        })
    }

    /// The underlying file system instance.
    pub fn instance(&self) -> &Arc<HareInstance> {
        &self.inst
    }

    /// Cores available to applications.
    pub fn app_cores(&self) -> &[usize] {
        &self.inst.config().app_cores
    }

    /// Scheduling server handle for `core`.
    pub(crate) fn sched_handle(&self, core: usize) -> Option<SchedHandle> {
        self.scheds.get(&core).cloned()
    }

    /// Stops scheduling servers and file servers. Processes must have
    /// exited first (join their [`fsapi::ProcJoin`]s).
    pub fn shutdown(&self) {
        // Reap finished process threads.
        {
            let rx = self.proc_threads.lock();
            while let Ok(h) = rx.try_recv() {
                let _ = h.join();
            }
        }
        let mut threads = self.sched_threads.lock();
        for h in self.scheds.values() {
            let _ = h.tx.send(SchedMsg::Shutdown, 0, 0);
        }
        for t in threads.drain(..) {
            let _ = t.join();
        }
        self.inst.shutdown();
    }
}

impl Drop for HareSystem {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl System for HareSystem {
    type Proc = HareProc;

    fn start_proc(&self) -> HareProc {
        // The initial process runs on the first application core with fresh
        // placement state, like init.
        let core = self.app_cores()[0];
        let system = self.self_ref.upgrade().expect("system alive");
        let placement = PlacementState::new(self.inst.config().placement, 0);
        HareProc::start_on(system, core, 0, Vec::new(), placement, None).expect("initial process")
    }

    fn elapsed_cycles(&self) -> u64 {
        self.inst.machine().elapsed_cycles()
    }

    fn sync_cores(&self) {
        self.inst.machine().sync();
    }

    fn ncores(&self) -> usize {
        self.inst.config().ncores
    }
}
