//! # hare-sched — Hare's scheduling servers and process model
//!
//! Hare "introduces a scheduling server ... responsible for spawning new
//! processes on its local core, waiting for these processes to exit, and
//! returning their exit status back to their original parents", plus signal
//! relay (paper §3.1, §3.5).
//!
//! The key insight reproduced here is the **remote execution protocol**:
//! `exec` is a narrow point where a process's entire state is its arguments
//! and its open file descriptors, so `exec` can be an RPC to a scheduling
//! server on another core. The caller becomes a *proxy* that relays the
//! exit status (and signals) between the original parent and the remote
//! process.
//!
//! In this reproduction a simulated process is an OS thread bound to a
//! virtual core, owning a [`hare_core::ClientLib`]. [`HareProc::spawn`]
//! implements the fork+exec idiom the paper's workloads use: descriptors
//! are exported (made *shared*, paper §3.4), the scheduling server of the
//! policy-chosen core starts the child, and the returned [`fsapi::ProcJoin`]
//! is the proxy's wait channel.
//!
//! [`HareProc::spawn`]: proc::HareProc
//! [`hare_core::ClientLib`]: hare_core::ClientLib

pub mod policy;
pub mod proc;
pub mod server;
pub mod signal;
pub mod system;

pub use policy::PlacementState;
pub use proc::HareProc;
pub use signal::{SignalReceiver, SignalSender, SIGKILL, SIGTERM, SIGUSR1};
pub use system::HareSystem;

/// Virtual cycles to start a process image on the destination core (the
/// scheduling server forks itself and execs the target, paper §3.5; the
/// paper notes Hare's scheduler is slower than Linux's, §5.3.3).
pub const SPAWN_COST: u64 = 120_000;

/// Virtual cycles the parent spends packaging an exec RPC.
pub const EXEC_SEND_COST: u64 = 8_000;
