//! Remote-execution placement policies.
//!
//! "When a process calls exec, the client library implements a scheduling
//! policy for deciding which core to pick; our prototype supports both a
//! random and a round-robin policy, with round-robin state propagated from
//! parent to child" (paper §3.5).

use hare_core::Placement;

/// Per-process placement state (the round-robin cursor, or the PRNG state
/// for random placement).
#[derive(Debug, Clone)]
pub struct PlacementState {
    policy: Placement,
    cursor: u64,
}

impl PlacementState {
    /// Initial state for the first process.
    pub fn new(policy: Placement, seed: u64) -> Self {
        PlacementState {
            policy,
            cursor: seed,
        }
    }

    /// Picks the next core from `app_cores`, advancing local state.
    pub fn pick(&mut self, app_cores: &[usize]) -> usize {
        assert!(!app_cores.is_empty());
        match self.policy {
            Placement::RoundRobin => {
                let core = app_cores[self.cursor as usize % app_cores.len()];
                self.cursor = self.cursor.wrapping_add(1);
                core
            }
            Placement::Random => {
                // SplitMix64 step: deterministic, seedable, well spread.
                self.cursor = self.cursor.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = self.cursor;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                app_cores[(z % app_cores.len() as u64) as usize]
            }
        }
    }

    /// The state a child inherits ("round-robin state propagated from
    /// parent to child").
    pub fn inherit(&self) -> PlacementState {
        self.clone()
    }

    /// Load-aware round-robin (the `load_aware_exec` config flag): picks
    /// the application core whose `load` is lowest — fed by the per-server
    /// operation counters, so a core whose co-located file server is
    /// hammered stops receiving new processes. The scan starts at the
    /// round-robin cursor, so ties (all-idle machines included) rotate
    /// exactly like the paper's policy; random placement ignores load by
    /// design.
    pub fn pick_loaded(&mut self, app_cores: &[usize], load: impl Fn(usize) -> u64) -> usize {
        assert!(!app_cores.is_empty());
        if matches!(self.policy, Placement::Random) {
            return self.pick(app_cores);
        }
        let n = app_cores.len();
        let start = self.cursor as usize % n;
        let mut best = app_cores[start];
        let mut best_load = load(best);
        for i in 1..n {
            let c = app_cores[(start + i) % n];
            let l = load(c);
            if l < best_load {
                best = c;
                best_load = l;
            }
        }
        self.cursor = self.cursor.wrapping_add(1);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let cores = [3, 5, 7];
        let mut p = PlacementState::new(Placement::RoundRobin, 0);
        let picks: Vec<usize> = (0..6).map(|_| p.pick(&cores)).collect();
        assert_eq!(picks, vec![3, 5, 7, 3, 5, 7]);
    }

    #[test]
    fn round_robin_inheritance_continues_cycle() {
        let cores = [0, 1, 2, 3];
        let mut parent = PlacementState::new(Placement::RoundRobin, 0);
        parent.pick(&cores); // 0
        let mut child = parent.inherit();
        assert_eq!(child.pick(&cores), 1, "child continues the parent cursor");
    }

    #[test]
    fn load_aware_round_robin_prefers_the_coolest_core() {
        let cores = [0, 1, 2, 3];
        let load = |c: usize| [500u64, 20, 300, 40][c];
        let mut p = PlacementState::new(Placement::RoundRobin, 0);
        assert_eq!(p.pick_loaded(&cores, load), 1, "least-loaded server wins");
        // Uniform load degrades to the round-robin rotation (the cursor
        // advanced once above).
        let mut q = PlacementState::new(Placement::RoundRobin, 0);
        assert_eq!(q.pick_loaded(&cores, |_| 7), 0);
        assert_eq!(q.pick_loaded(&cores, |_| 7), 1);
        assert_eq!(q.pick_loaded(&cores, |_| 7), 2);
        // Random placement ignores load by design.
        let mut r1 = PlacementState::new(Placement::Random, 9);
        let mut r2 = PlacementState::new(Placement::Random, 9);
        assert_eq!(r1.pick_loaded(&cores, load), r2.pick(&cores));
    }

    #[test]
    fn random_is_deterministic_and_spread() {
        let cores: Vec<usize> = (0..8).collect();
        let mut a = PlacementState::new(Placement::Random, 42);
        let mut b = PlacementState::new(Placement::Random, 42);
        let pa: Vec<usize> = (0..64).map(|_| a.pick(&cores)).collect();
        let pb: Vec<usize> = (0..64).map(|_| b.pick(&cores)).collect();
        assert_eq!(pa, pb, "same seed, same sequence");
        let distinct: std::collections::HashSet<usize> = pa.into_iter().collect();
        assert!(distinct.len() >= 6, "random placement should spread");
    }
}
