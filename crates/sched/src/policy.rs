//! Remote-execution placement policies.
//!
//! "When a process calls exec, the client library implements a scheduling
//! policy for deciding which core to pick; our prototype supports both a
//! random and a round-robin policy, with round-robin state propagated from
//! parent to child" (paper §3.5).

use hare_core::Placement;

/// Per-process placement state (the round-robin cursor, or the PRNG state
/// for random placement).
#[derive(Debug, Clone)]
pub struct PlacementState {
    policy: Placement,
    cursor: u64,
}

impl PlacementState {
    /// Initial state for the first process.
    pub fn new(policy: Placement, seed: u64) -> Self {
        PlacementState {
            policy,
            cursor: seed,
        }
    }

    /// Picks the next core from `app_cores`, advancing local state.
    pub fn pick(&mut self, app_cores: &[usize]) -> usize {
        assert!(!app_cores.is_empty());
        match self.policy {
            Placement::RoundRobin => {
                let core = app_cores[self.cursor as usize % app_cores.len()];
                self.cursor = self.cursor.wrapping_add(1);
                core
            }
            Placement::Random => {
                // SplitMix64 step: deterministic, seedable, well spread.
                self.cursor = self.cursor.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = self.cursor;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                app_cores[(z % app_cores.len() as u64) as usize]
            }
        }
    }

    /// The state a child inherits ("round-robin state propagated from
    /// parent to child").
    pub fn inherit(&self) -> PlacementState {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let cores = [3, 5, 7];
        let mut p = PlacementState::new(Placement::RoundRobin, 0);
        let picks: Vec<usize> = (0..6).map(|_| p.pick(&cores)).collect();
        assert_eq!(picks, vec![3, 5, 7, 3, 5, 7]);
    }

    #[test]
    fn round_robin_inheritance_continues_cycle() {
        let cores = [0, 1, 2, 3];
        let mut parent = PlacementState::new(Placement::RoundRobin, 0);
        parent.pick(&cores); // 0
        let mut child = parent.inherit();
        assert_eq!(child.pick(&cores), 1, "child continues the parent cursor");
    }

    #[test]
    fn random_is_deterministic_and_spread() {
        let cores: Vec<usize> = (0..8).collect();
        let mut a = PlacementState::new(Placement::Random, 42);
        let mut b = PlacementState::new(Placement::Random, 42);
        let pa: Vec<usize> = (0..64).map(|_| a.pick(&cores)).collect();
        let pb: Vec<usize> = (0..64).map(|_| b.pick(&cores)).collect();
        assert_eq!(pa, pb, "same seed, same sequence");
        let distinct: std::collections::HashSet<usize> = pa.into_iter().collect();
        assert!(distinct.len() >= 6, "random placement should spread");
    }
}
