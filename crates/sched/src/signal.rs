//! Signal relay between original parents and remotely executed processes.
//!
//! "The scheduling server is responsible for propagating signals between
//! the child process and the original parent ... if the proxy process
//! receives any signals, it relays them to the new process" (paper §3.1,
//! §3.5). Delivery is asynchronous: the target polls its queue, matching
//! Hare's polling IPC design.

use std::sync::Arc;

/// `SIGTERM` number.
pub const SIGTERM: i32 = 15;
/// `SIGKILL` number.
pub const SIGKILL: i32 = 9;
/// `SIGUSR1` number.
pub const SIGUSR1: i32 = 10;

/// Sending half of a process's signal queue (held by the parent's proxy).
#[derive(Clone)]
pub struct SignalSender {
    tx: msg::Sender<i32>,
}

/// Receiving half (held by the process; polled).
pub struct SignalReceiver {
    rx: msg::Receiver<i32>,
}

/// Creates a signal queue pair.
pub fn signal_queue(stats: Arc<msg::MsgStats>) -> (SignalSender, SignalReceiver) {
    let (tx, rx) = msg::channel(stats);
    (SignalSender { tx }, SignalReceiver { rx })
}

impl SignalSender {
    /// Delivers a signal (the proxy relay: parent → remote process).
    pub fn kill(&self, sig: i32) {
        let _ = self.tx.send(sig, 0, 0);
    }
}

impl SignalReceiver {
    /// Polls for a pending signal.
    pub fn poll(&self) -> Option<i32> {
        self.rx.try_recv().ok().map(|e| e.payload)
    }

    /// True if a termination signal (`SIGTERM`/`SIGKILL`) is pending;
    /// consumes everything queued before it.
    pub fn should_terminate(&self) -> bool {
        while let Some(sig) = self.poll() {
            if sig == SIGTERM || sig == SIGKILL {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_roundtrip() {
        let (tx, rx) = signal_queue(msg::MsgStats::shared());
        assert!(rx.poll().is_none());
        tx.kill(SIGUSR1);
        assert_eq!(rx.poll(), Some(SIGUSR1));
    }

    #[test]
    fn terminate_detection() {
        let (tx, rx) = signal_queue(msg::MsgStats::shared());
        tx.kill(SIGUSR1);
        tx.kill(SIGTERM);
        assert!(rx.should_terminate());
        assert!(!rx.should_terminate(), "queue was drained");
    }
}
