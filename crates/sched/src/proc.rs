//! The simulated process: a thread bound to a virtual core, owning a Hare
//! client library.

use crate::policy::PlacementState;
use crate::server::{ExecRequest, SchedMsg};
use crate::signal::{signal_queue, SignalReceiver, SignalSender};
use crate::system::HareSystem;
use crate::EXEC_SEND_COST;
use fsapi::{Errno, FsResult, ProcHandle, ProcJoin, ProcMain};
use hare_core::client::fd::ExportedFd;
use hare_core::ClientLib;
use parking_lot::Mutex;
use std::sync::Arc;

/// One Hare process.
///
/// Implements [`fsapi::ProcFs`] by delegation to its client library and
/// [`fsapi::ProcHandle::spawn`] via the remote execution protocol
/// (paper §3.5).
pub struct HareProc {
    lib: Arc<ClientLib>,
    system: Arc<HareSystem>,
    placement: Mutex<PlacementState>,
    signals: Option<SignalReceiver>,
}

impl HareProc {
    /// Starts a process on `core` with inherited descriptors (used by the
    /// scheduling server and for the initial process).
    pub(crate) fn start_on(
        system: Arc<HareSystem>,
        core: usize,
        start: u64,
        exports: Vec<ExportedFd>,
        placement: PlacementState,
        signals: Option<SignalReceiver>,
    ) -> FsResult<HareProc> {
        let lib = system.instance().new_client_at(core, start)?;
        lib.import_fds(&exports);
        Ok(HareProc {
            lib: Arc::new(lib),
            system,
            placement: Mutex::new(placement),
            signals,
        })
    }

    /// The client library (for diagnostics).
    pub fn lib(&self) -> &ClientLib {
        &self.lib
    }

    /// Polls this process's signal queue (Hare relays signals through the
    /// proxy; delivery is polled, matching the prototype's polling IPC).
    pub fn signals(&self) -> Option<&SignalReceiver> {
        self.signals.as_ref()
    }

    /// Like [`ProcHandle::spawn`] but also returns the child's signal
    /// sender, so the parent (proxy) can relay signals (paper §3.5).
    pub fn spawn_with_signals(
        &self,
        main: ProcMain<HareProc>,
    ) -> FsResult<(ProcJoin, SignalSender)> {
        let machine = self.system.instance().machine();
        let parent_core = self.lib.core();
        self.lib.vwork(EXEC_SEND_COST);

        // The entire exec-point state: descriptors (now shared) + placement.
        let exports = self.lib.export_fds()?;
        let (target_core, child_placement) = {
            let mut p = self.placement.lock();
            // Load-aware placement (config flag): prefer the core whose
            // co-located file server has served the fewest operations in
            // the current placement window (recent load, not
            // ops-since-boot — a formerly hot but now idle server must
            // not repel placement forever), instead of blindly cycling.
            let core = if self.system.instance().config().load_aware_exec {
                machine.placement_tick();
                p.pick_loaded(self.system.app_cores(), |c| {
                    machine.recent_server_ops_on_core(c)
                })
            } else {
                p.pick(self.system.app_cores())
            };
            (core, p.inherit())
        };

        let (sig_tx, sig_rx) = signal_queue(Arc::clone(&machine.msg_stats));
        let (exit_tx, exit_rx) = msg::channel::<i32>(Arc::clone(&machine.msg_stats));
        let sched = self.system.sched_handle(target_core).ok_or(Errno::EINVAL)?;
        self.lib.vwork(machine.cost.msg_send);
        let deliver = self.lib.vnow() + machine.latency(parent_core, target_core);
        sched
            .tx
            .send(
                SchedMsg::Exec(ExecRequest {
                    exports,
                    placement: child_placement,
                    main,
                    exit_tx,
                    signals: sig_rx,
                }),
                deliver,
                parent_core,
            )
            .map_err(|_| Errno::EIO)?;

        // The caller becomes the proxy: waiting on this join handle is the
        // proxy relaying the exit status to the parent.
        let lib = Arc::clone(&self.lib);
        let join = ProcJoin::new(move || match exit_rx.recv() {
            Ok(env) => {
                lib.vwait(env.deliver_at);
                lib.vwork(lib.machine().cost.msg_recv);
                env.payload
            }
            Err(_) => -1,
        });
        Ok((join, sig_tx))
    }
}

impl ProcHandle for HareProc {
    fn spawn(&self, main: ProcMain<Self>) -> FsResult<ProcJoin> {
        self.spawn_with_signals(main).map(|(join, _sig)| join)
    }

    fn core(&self) -> usize {
        self.lib.core()
    }

    fn compute(&self, cycles: u64) {
        self.lib.vwork(cycles);
    }
}

impl fsapi::VClock for HareProc {
    fn vnow(&self) -> u64 {
        self.lib.vnow()
    }

    fn vwait(&self, t: u64) {
        self.lib.vwait(t)
    }
}

impl fsapi::ProcFs for HareProc {
    fn open(&self, path: &str, flags: fsapi::OpenFlags, mode: fsapi::Mode) -> FsResult<fsapi::Fd> {
        self.lib.open(path, flags, mode)
    }
    fn close(&self, fd: fsapi::Fd) -> FsResult<()> {
        self.lib.close(fd)
    }
    fn read(&self, fd: fsapi::Fd, buf: &mut [u8]) -> FsResult<usize> {
        self.lib.read(fd, buf)
    }
    fn write(&self, fd: fsapi::Fd, buf: &[u8]) -> FsResult<usize> {
        self.lib.write(fd, buf)
    }
    fn lseek(&self, fd: fsapi::Fd, offset: i64, whence: fsapi::Whence) -> FsResult<u64> {
        self.lib.lseek(fd, offset, whence)
    }
    fn fsync(&self, fd: fsapi::Fd) -> FsResult<()> {
        self.lib.fsync(fd)
    }
    fn ftruncate(&self, fd: fsapi::Fd, len: u64) -> FsResult<()> {
        self.lib.ftruncate(fd, len)
    }
    fn dup(&self, fd: fsapi::Fd) -> FsResult<fsapi::Fd> {
        self.lib.dup(fd)
    }
    fn pipe(&self) -> FsResult<(fsapi::Fd, fsapi::Fd)> {
        self.lib.pipe()
    }
    fn unlink(&self, path: &str) -> FsResult<()> {
        self.lib.unlink(path)
    }
    fn mkdir_opts(&self, path: &str, mode: fsapi::Mode, opts: fsapi::MkdirOpts) -> FsResult<()> {
        self.lib.mkdir_opts(path, mode, opts)
    }
    fn rmdir(&self, path: &str) -> FsResult<()> {
        self.lib.rmdir(path)
    }
    fn rename(&self, old: &str, new: &str) -> FsResult<()> {
        self.lib.rename(old, new)
    }
    fn readdir(&self, path: &str) -> FsResult<Vec<fsapi::DirEntry>> {
        self.lib.readdir(path)
    }
    fn stat(&self, path: &str) -> FsResult<fsapi::Stat> {
        self.lib.stat(path)
    }
    fn fstat(&self, fd: fsapi::Fd) -> FsResult<fsapi::Stat> {
        self.lib.fstat(fd)
    }
}
