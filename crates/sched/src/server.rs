//! The per-core scheduling server.
//!
//! "Each core runs a scheduling server, which listens for RPCs to perform
//! execs ... The scheduling server in turn starts a new process on the
//! destination core (by forking itself), configures the new process based
//! on the RPC's arguments, and calls exec to load the target process image
//! on the local core" (paper §3.5).

use crate::policy::PlacementState;
use crate::proc::HareProc;
use crate::signal::SignalReceiver;
use crate::system::HareSystem;
use crate::SPAWN_COST;
use fsapi::ProcMain;
use hare_core::client::fd::ExportedFd;
use std::sync::{Arc, Weak};

/// An exec RPC: everything that defines the process at the exec point —
/// its descriptors, its placement state, and its image (the closure).
pub struct ExecRequest {
    /// Descriptors inherited by the child (already made shared).
    pub exports: Vec<ExportedFd>,
    /// Placement state propagated parent → child (paper §3.5).
    pub placement: PlacementState,
    /// The process image.
    pub main: ProcMain<HareProc>,
    /// The proxy's exit-status channel: the scheduling server arranges for
    /// the status to be sent here when the process exits (paper §3.5).
    pub exit_tx: msg::Sender<i32>,
    /// The child's signal queue (parent holds the sender; the proxy relay).
    pub signals: SignalReceiver,
}

/// Messages understood by a scheduling server.
pub enum SchedMsg {
    /// Start a process on this server's core.
    Exec(ExecRequest),
    /// Stop the server loop.
    Shutdown,
}

/// Handle to one core's scheduling server.
#[derive(Clone)]
pub struct SchedHandle {
    /// The core the server manages.
    pub core: usize,
    /// Request queue.
    pub tx: msg::Sender<SchedMsg>,
}

/// Runs one scheduling server until shutdown.
///
/// The server holds only a weak reference to the system so that dropping
/// the system tears everything down cleanly.
pub fn run_sched_server(
    system: Weak<HareSystem>,
    core: usize,
    rx: msg::Receiver<SchedMsg>,
    proc_threads: std::sync::mpsc::Sender<std::thread::JoinHandle<()>>,
) {
    while let Ok(env) = rx.recv() {
        match env.payload {
            SchedMsg::Shutdown => break,
            SchedMsg::Exec(req) => {
                let Some(system) = system.upgrade() else {
                    break;
                };
                let machine = Arc::clone(system.instance().machine());
                // The scheduling server forks itself and execs the image:
                // the spawn cost is CPU work on this core, and the child's
                // timeline begins when it completes.
                machine.busy.advance(core, SPAWN_COST);
                let start = env.deliver_at + SPAWN_COST;
                machine.note(start);
                let exit_tx = req.exit_tx;
                let handle = std::thread::Builder::new()
                    .name(format!("hare-proc-c{core}"))
                    .spawn(move || {
                        let status = match HareProc::start_on(
                            Arc::clone(&system),
                            core,
                            start,
                            req.exports,
                            req.placement,
                            Some(req.signals),
                        ) {
                            Ok(proc) => {
                                let status = (req.main)(&proc);
                                // Exit notification back to the proxy
                                // (paper §3.5: the scheduling server "will
                                // send an RPC back to the proxy, enabling
                                // the proxy to exit").
                                let t_exit = proc.lib().vnow() + machine.cost.msg_send;
                                machine.busy.advance(core, machine.cost.msg_send);
                                machine.note(t_exit);
                                drop(proc); // closes descriptors, unregisters
                                let _ = exit_tx.send(status, t_exit, core);
                                return;
                            }
                            Err(e) => {
                                debug_assert!(false, "process start failed: {e}");
                                127
                            }
                        };
                        let _ = exit_tx.send(status, start, core);
                    })
                    .expect("spawn process thread");
                let _ = proc_threads.send(handle);
            }
        }
    }
}
