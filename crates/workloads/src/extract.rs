//! `extract` and `punzip`: archive extraction workloads.
//!
//! `extract` reproduces the tar idiom the paper calls out (§2.2): the
//! parent opens the archive, forks children, and the children **share the
//! file descriptor** — each `read` atomically claims the next record
//! through the server-held offset, so the archive is partitioned among
//! workers without any explicit coordination. This is precisely what NFS
//! cannot do ("applications using this idiom are limited to a single
//! core").
//!
//! `punzip` unzips independent archive copies in parallel (the paper uses
//! 20 copies of the manpages); each worker runs a decompressor child piped
//! into a writer, exercising cross-process pipes.

use crate::ctx::Ctx;
use crate::scale::Scale;
use crate::trees::synth_data;
use fsapi::{FsResult, MkdirOpts, Mode, OpenFlags, ProcHandle};

const EXTRACT_DIR: &str = "/extract";
const ARCHIVE: &str = "/extract/archive.tar";
const PUNZIP_DIR: &str = "/punzip";

/// One archive record: 8-byte index header + payload.
pub const RECORD: usize = 4096;

fn record(idx: u64) -> Vec<u8> {
    let mut r = synth_data(idx, RECORD);
    r[..8].copy_from_slice(&idx.to_le_bytes());
    r
}

/// Writes the archive.
pub fn setup_extract<P: ProcHandle>(ctx: &Ctx<'_, P>, _nprocs: usize, s: &Scale) -> FsResult<()> {
    ctx.mkdir(EXTRACT_DIR, MkdirOpts::DISTRIBUTED)?;
    let fd = ctx.open(
        ARCHIVE,
        OpenFlags::CREAT | OpenFlags::WRONLY,
        Mode::default(),
    )?;
    for i in 0..s.archive_records {
        ctx.write_all(fd, &record(i as u64))?;
    }
    ctx.close(fd)
}

/// Extracts the archive with `nprocs` children sharing one descriptor.
pub fn run_extract<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, _s: &Scale) -> FsResult<()> {
    let fd = ctx.open(ARCHIVE, OpenFlags::RDONLY, Mode::default())?;
    let mut joins = Vec::new();
    for _ in 0..nprocs {
        let raw = fd;
        joins.push(ctx.spawn(move |wctx| {
            let body = || -> FsResult<()> {
                let mut buf = vec![0u8; RECORD];
                loop {
                    // The shared offset makes each full-record read an
                    // atomic claim of the next record (paper §3.4).
                    let n = wctx.read_full(raw, &mut buf)?;
                    if n < RECORD {
                        break;
                    }
                    let idx = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
                    wctx.put_file(&format!("{EXTRACT_DIR}/f{idx}"), &buf)?;
                    wctx.add_ops(1);
                }
                Ok(())
            };
            match body() {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("extract worker failed: {e}");
                    1
                }
            }
        })?);
    }
    let mut bad = 0;
    for j in joins {
        bad += j.wait();
    }
    ctx.close(fd)?;
    if bad != 0 {
        return Err(fsapi::Errno::EIO);
    }
    Ok(())
}

/// Writes one archive copy and output directory per process. Each copy is
/// written by a process on its owner's future core, so creation affinity
/// spreads the copies over the servers' buffer-cache partitions (just as
/// the paper's 20 manpage copies were not all written from one core).
pub fn setup_punzip<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, s: &Scale) -> FsResult<()> {
    ctx.mkdir(PUNZIP_DIR, MkdirOpts::DISTRIBUTED)?;
    let nfiles = s.punzip_files;
    crate::run_workers(ctx, nprocs, move |wctx, w| {
        let fd = wctx.open(
            &format!("{PUNZIP_DIR}/arch{w}"),
            OpenFlags::CREAT | OpenFlags::WRONLY,
            Mode::default(),
        )?;
        for i in 0..nfiles {
            wctx.write_all(fd, &record(i as u64))?;
        }
        wctx.close(fd)?;
        wctx.mkdir(&format!("{PUNZIP_DIR}/out{w}"), MkdirOpts::DISTRIBUTED)?;
        Ok(())
    })
}

/// Each worker pipes its archive through a decompressor child and writes
/// the extracted files.
pub fn run_punzip<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, s: &Scale) -> FsResult<()> {
    let nfiles = s.punzip_files;
    crate::run_workers(ctx, nprocs, move |wctx, w| {
        let (r, wr) = wctx.pipe()?;
        // Decompressor child: archive -> pipe (with decompression compute).
        let arch = format!("{PUNZIP_DIR}/arch{w}");
        let join = wctx.spawn(move |cctx| {
            let body = || -> FsResult<()> {
                let fd = cctx.open(&arch, OpenFlags::RDONLY, Mode::default())?;
                let mut buf = vec![0u8; RECORD];
                loop {
                    let n = cctx.read_full(fd, &mut buf)?;
                    if n == 0 {
                        break;
                    }
                    cctx.compute(20_000); // inflate
                    cctx.write_all(wr, &buf[..n])?;
                    if n < RECORD {
                        break;
                    }
                }
                cctx.close(fd)?;
                cctx.close(wr)?;
                Ok(())
            };
            match body() {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("punzip decompressor failed: {e}");
                    1
                }
            }
        })?;
        // Writer side: close our copy of the write end so EOF propagates.
        wctx.close(wr)?;
        let mut buf = vec![0u8; RECORD];
        let mut written = 0usize;
        loop {
            let n = wctx.read_full(r, &mut buf)?;
            if n < RECORD {
                break;
            }
            let idx = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
            wctx.put_file(&format!("{PUNZIP_DIR}/out{w}/f{idx}"), &buf)?;
            wctx.add_ops(1);
            written += 1;
        }
        wctx.close(r)?;
        if join.wait() != 0 {
            return Err(fsapi::Errno::EIO);
        }
        debug_assert_eq!(written, nfiles);
        Ok(())
    })
}
