//! # hare-workloads — the paper's 13 evaluation workloads
//!
//! Every benchmark in the Hare paper's evaluation (§5.2, Figure 5), written
//! once against the [`fsapi`] traits so the identical workload runs on
//! Hare, the Linux ramfs baseline, and the UNFS3 baseline:
//!
//! | workload | module | stresses |
//! |---|---|---|
//! | creates | [`micro`] | concurrent file creation in one directory |
//! | writes | [`micro`] | the direct buffer-cache write path |
//! | renames | [`micro`] | ADD_MAP/RM_MAP dentry protocol |
//! | directories | [`micro`] | mkdir + three-phase rmdir broadcast |
//! | rm dense / rm sparse | [`rm`] | recursive removal of both tree shapes |
//! | pfind dense / sparse | [`pfind`] | parallel find (readdir + stat) |
//! | extract | [`extract`] | shared file descriptors (tar idiom) |
//! | punzip | [`extract`] | cross-process pipes, parallel unzip |
//! | mailbench | [`mailbench`] | create + fsync + rename + unlink mix |
//! | fsstress | [`fsstress`] | randomized op mix in private subtrees |
//! | build linux | [`kbuild`] | jobserver pipe, remote exec, full build |
//!
//! [`run`] executes one workload on one system and returns virtual-time
//! throughput plus the Figure 5 operation breakdown.

pub mod ctx;
pub mod extract;
pub mod fsstress;
pub mod kbuild;
pub mod mailbench;
pub mod micro;
pub mod pfind;
pub mod rm;
pub mod scale;
pub mod trace;
pub mod trees;

pub use ctx::{Ctx, OpKind, OpStats};
pub use scale::Scale;

use fsapi::{Errno, FsResult, ProcHandle, System};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The thirteen benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// File creations in a shared directory.
    Creates,
    /// Block writes through the buffer cache.
    Writes,
    /// Renames within a shared directory.
    Renames,
    /// mkdir/rmdir pairs of distributed directories.
    Directories,
    /// Recursive removal of the dense tree.
    RmDense,
    /// Recursive removal of the sparse tree.
    RmSparse,
    /// Parallel find over the dense tree.
    PfindDense,
    /// Parallel find over the sparse tree.
    PfindSparse,
    /// Archive extraction through a shared descriptor.
    Extract,
    /// Parallel unzip through pipes.
    Punzip,
    /// sv6 mail server benchmark.
    Mailbench,
    /// LTP randomized stress.
    Fsstress,
    /// Parallel kernel-style build.
    BuildLinux,
}

impl Workload {
    /// All workloads in the paper's figure order.
    pub const ALL: [Workload; 13] = [
        Workload::Creates,
        Workload::Writes,
        Workload::Renames,
        Workload::Directories,
        Workload::RmDense,
        Workload::RmSparse,
        Workload::PfindDense,
        Workload::PfindSparse,
        Workload::Extract,
        Workload::Punzip,
        Workload::Mailbench,
        Workload::Fsstress,
        Workload::BuildLinux,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Creates => "creates",
            Workload::Writes => "writes",
            Workload::Renames => "renames",
            Workload::Directories => "directories",
            Workload::RmDense => "rm dense",
            Workload::RmSparse => "rm sparse",
            Workload::PfindDense => "pfind dense",
            Workload::PfindSparse => "pfind sparse",
            Workload::Extract => "extract",
            Workload::Punzip => "punzip",
            Workload::Mailbench => "mailbench",
            Workload::Fsstress => "fsstress",
            Workload::BuildLinux => "build linux",
        }
    }

    /// The ten workloads of the paper's 40-core Hare-vs-Linux comparison
    /// (Figure 15 omits extract and the rm tests).
    pub const PARALLEL: [Workload; 10] = [
        Workload::Creates,
        Workload::Writes,
        Workload::Renames,
        Workload::Directories,
        Workload::PfindDense,
        Workload::PfindSparse,
        Workload::Punzip,
        Workload::Mailbench,
        Workload::Fsstress,
        Workload::BuildLinux,
    ];
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one workload run.
#[derive(Debug)]
pub struct WorkloadResult {
    /// Which workload ran.
    pub workload: Workload,
    /// Worker process count.
    pub nprocs: usize,
    /// Workload-defined operations completed in the measured region.
    pub ops: u64,
    /// Virtual cycles of the measured region.
    pub cycles: u64,
    /// Syscall breakdown (Figure 5).
    pub stats: Arc<OpStats>,
}

impl WorkloadResult {
    /// Virtual seconds of the measured region.
    pub fn virtual_secs(&self) -> f64 {
        self.cycles as f64 / (vtime::CYCLES_PER_US as f64 * 1e6)
    }

    /// Operations per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.ops as f64 / self.virtual_secs()
    }
}

/// Runs `workload` on a **fresh** system with `nprocs` worker processes.
///
/// Setup (tree building, archive writing) happens first; core clocks are
/// then synchronized so the measured region starts from a common virtual
/// instant; the measured region's cycles and operations are reported.
pub fn run<S: System>(
    sys: &S,
    workload: Workload,
    nprocs: usize,
    s: &Scale,
) -> FsResult<WorkloadResult> {
    assert!(nprocs > 0);
    let root = sys.start_proc();
    let ctx = Ctx::new(&root);

    match workload {
        Workload::Creates | Workload::Writes | Workload::Renames | Workload::Directories => {
            micro::setup(&ctx, nprocs, s)?
        }
        Workload::RmDense => rm::setup_dense(&ctx, nprocs, s)?,
        Workload::RmSparse => rm::setup_sparse(&ctx, nprocs, s)?,
        Workload::PfindDense => pfind::setup_dense(&ctx, nprocs, s)?,
        Workload::PfindSparse => pfind::setup_sparse(&ctx, nprocs, s)?,
        Workload::Extract => extract::setup_extract(&ctx, nprocs, s)?,
        Workload::Punzip => extract::setup_punzip(&ctx, nprocs, s)?,
        Workload::Mailbench => mailbench::setup(&ctx, nprocs, s)?,
        Workload::Fsstress => fsstress::setup(&ctx, nprocs, s)?,
        Workload::BuildLinux => kbuild::setup(&ctx, nprocs, s)?,
    }

    sys.sync_cores();
    let t0 = sys.elapsed_cycles();

    match workload {
        Workload::Creates => micro::run_creates(&ctx, nprocs, s)?,
        Workload::Writes => micro::run_writes(&ctx, nprocs, s)?,
        Workload::Renames => micro::run_renames(&ctx, nprocs, s)?,
        Workload::Directories => micro::run_directories(&ctx, nprocs, s)?,
        Workload::RmDense => rm::run_dense(&ctx, nprocs, s)?,
        Workload::RmSparse => rm::run_sparse(&ctx, nprocs, s)?,
        Workload::PfindDense => pfind::run_dense(&ctx, nprocs, s)?,
        Workload::PfindSparse => pfind::run_sparse(&ctx, nprocs, s)?,
        Workload::Extract => extract::run_extract(&ctx, nprocs, s)?,
        Workload::Punzip => extract::run_punzip(&ctx, nprocs, s)?,
        Workload::Mailbench => mailbench::run(&ctx, nprocs, s)?,
        Workload::Fsstress => fsstress::run(&ctx, nprocs, s)?,
        Workload::BuildLinux => kbuild::run(&ctx, nprocs, s)?,
    }

    let t1 = sys.elapsed_cycles();
    Ok(WorkloadResult {
        workload,
        nprocs,
        ops: ctx.ops.load(Ordering::Relaxed),
        cycles: t1.saturating_sub(t0),
        stats: Arc::clone(&ctx.stats),
    })
}

/// Spawns `nprocs` worker processes running `f(ctx, worker_id)` and joins
/// them, failing if any worker failed.
pub(crate) fn run_workers<P, F>(ctx: &Ctx<'_, P>, nprocs: usize, f: F) -> FsResult<()>
where
    P: ProcHandle,
    F: Fn(&Ctx<'_, P>, usize) -> FsResult<()> + Clone + Send + 'static,
{
    let mut joins = Vec::with_capacity(nprocs);
    for w in 0..nprocs {
        let g = f.clone();
        joins.push(ctx.spawn(move |wctx| match g(wctx, w) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("worker {w} failed: {e}");
                1
            }
        })?);
    }
    let bad: i32 = joins.into_iter().map(|j| j.wait()).sum();
    if bad != 0 {
        Err(Errno::EIO)
    } else {
        Ok(())
    }
}
