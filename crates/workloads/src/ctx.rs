//! Workload execution context: a process handle plus operation counters.
//!
//! Every syscall a workload issues goes through [`Ctx`], which tallies it
//! by category — this is how Figure 5 ("operation breakdown for our
//! benchmarks") is regenerated.

use fsapi::{
    DirEntry, Errno, Fd, FsResult, MkdirOpts, Mode, OpenFlags, ProcHandle, ProcJoin, Stat, Whence,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Syscall categories, matching the paper's Figure 5 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum OpKind {
    /// `open` of an existing file.
    Open,
    /// `open` with `O_CREAT` creating the file.
    Creat,
    /// `close`.
    Close,
    /// `read` (files and pipes).
    Read,
    /// `write` (files and pipes).
    Write,
    /// `lseek`.
    Seek,
    /// `fsync`.
    Fsync,
    /// `ftruncate`.
    Truncate,
    /// `dup`.
    Dup,
    /// `pipe`.
    Pipe,
    /// `unlink`.
    Unlink,
    /// `mkdir`.
    Mkdir,
    /// `rmdir`.
    Rmdir,
    /// `rename`.
    Rename,
    /// `readdir` (getdents).
    Readdir,
    /// `stat`/`fstat`.
    Stat,
    /// `fork`+`exec` (spawn).
    Spawn,
}

/// Number of [`OpKind`] categories.
pub const N_OPS: usize = 17;

/// All categories in display order.
pub const ALL_OPS: [OpKind; N_OPS] = [
    OpKind::Open,
    OpKind::Creat,
    OpKind::Close,
    OpKind::Read,
    OpKind::Write,
    OpKind::Seek,
    OpKind::Fsync,
    OpKind::Truncate,
    OpKind::Dup,
    OpKind::Pipe,
    OpKind::Unlink,
    OpKind::Mkdir,
    OpKind::Rmdir,
    OpKind::Rename,
    OpKind::Readdir,
    OpKind::Stat,
    OpKind::Spawn,
];

impl OpKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Open => "open",
            OpKind::Creat => "creat",
            OpKind::Close => "close",
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Seek => "lseek",
            OpKind::Fsync => "fsync",
            OpKind::Truncate => "trunc",
            OpKind::Dup => "dup",
            OpKind::Pipe => "pipe",
            OpKind::Unlink => "unlink",
            OpKind::Mkdir => "mkdir",
            OpKind::Rmdir => "rmdir",
            OpKind::Rename => "rename",
            OpKind::Readdir => "readdir",
            OpKind::Stat => "stat",
            OpKind::Spawn => "spawn",
        }
    }
}

/// Machine-wide syscall counters for one workload run.
#[derive(Debug, Default)]
pub struct OpStats {
    counts: [AtomicU64; N_OPS],
}

impl OpStats {
    /// Fresh shared counters.
    pub fn shared() -> Arc<OpStats> {
        Arc::new(OpStats::default())
    }

    /// Records one operation.
    pub fn record(&self, kind: OpKind) {
        self.counts[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Count for one category.
    pub fn get(&self, kind: OpKind) -> u64 {
        self.counts[kind as usize].load(Ordering::Relaxed)
    }

    /// Total operations.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// `(label, count, percent)` rows for the Figure 5 table.
    pub fn breakdown(&self) -> Vec<(&'static str, u64, f64)> {
        let total = self.total().max(1) as f64;
        ALL_OPS
            .iter()
            .map(|k| {
                let c = self.get(*k);
                (k.label(), c, 100.0 * c as f64 / total)
            })
            .collect()
    }
}

/// A counting wrapper around one process.
pub struct Ctx<'p, P: ProcHandle> {
    /// The underlying process.
    pub p: &'p P,
    /// Shared syscall counters.
    pub stats: Arc<OpStats>,
    /// Workload-defined "operations completed" counter (the unit of each
    /// benchmark's throughput).
    pub ops: Arc<AtomicU64>,
}

impl<'p, P: ProcHandle> Ctx<'p, P> {
    /// Root context for the initial process.
    pub fn new(p: &'p P) -> Self {
        Ctx {
            p,
            stats: OpStats::shared(),
            ops: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds workload operations to the throughput counter.
    pub fn add_ops(&self, n: u64) {
        self.ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Spawns a worker process whose closure receives a [`Ctx`] sharing
    /// these counters.
    pub fn spawn(&self, f: impl FnOnce(&Ctx<'_, P>) -> i32 + Send + 'static) -> FsResult<ProcJoin> {
        self.stats.record(OpKind::Spawn);
        let stats = Arc::clone(&self.stats);
        let ops = Arc::clone(&self.ops);
        self.p.spawn(Box::new(move |p| {
            let ctx = Ctx { p, stats, ops };
            f(&ctx)
        }))
    }

    // ----- counted syscall wrappers -----------------------------------------

    /// `open`, counting creations separately.
    pub fn open(&self, path: &str, flags: OpenFlags, mode: Mode) -> FsResult<Fd> {
        let kind = if flags.contains(OpenFlags::CREAT) {
            OpKind::Creat
        } else {
            OpKind::Open
        };
        self.stats.record(kind);
        self.p.open(path, flags, mode)
    }

    /// `close`.
    pub fn close(&self, fd: Fd) -> FsResult<()> {
        self.stats.record(OpKind::Close);
        self.p.close(fd)
    }

    /// `read`.
    pub fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        self.stats.record(OpKind::Read);
        self.p.read(fd, buf)
    }

    /// Reads until `buf` is full or EOF; returns bytes read.
    pub fn read_full(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        let mut got = 0;
        while got < buf.len() {
            let n = self.read(fd, &mut buf[got..])?;
            if n == 0 {
                break;
            }
            got += n;
        }
        Ok(got)
    }

    /// `write`.
    pub fn write(&self, fd: Fd, buf: &[u8]) -> FsResult<usize> {
        self.stats.record(OpKind::Write);
        self.p.write(fd, buf)
    }

    /// Writes all of `buf`.
    pub fn write_all(&self, fd: Fd, buf: &[u8]) -> FsResult<()> {
        let mut done = 0;
        while done < buf.len() {
            done += self.write(fd, &buf[done..])?;
        }
        Ok(())
    }

    /// `lseek`.
    pub fn lseek(&self, fd: Fd, offset: i64, whence: Whence) -> FsResult<u64> {
        self.stats.record(OpKind::Seek);
        self.p.lseek(fd, offset, whence)
    }

    /// `fsync`.
    pub fn fsync(&self, fd: Fd) -> FsResult<()> {
        self.stats.record(OpKind::Fsync);
        self.p.fsync(fd)
    }

    /// `ftruncate`.
    pub fn ftruncate(&self, fd: Fd, len: u64) -> FsResult<()> {
        self.stats.record(OpKind::Truncate);
        self.p.ftruncate(fd, len)
    }

    /// `dup`.
    pub fn dup(&self, fd: Fd) -> FsResult<Fd> {
        self.stats.record(OpKind::Dup);
        self.p.dup(fd)
    }

    /// `pipe`.
    pub fn pipe(&self) -> FsResult<(Fd, Fd)> {
        self.stats.record(OpKind::Pipe);
        self.p.pipe()
    }

    /// `unlink`.
    pub fn unlink(&self, path: &str) -> FsResult<()> {
        self.stats.record(OpKind::Unlink);
        self.p.unlink(path)
    }

    /// `mkdir`.
    pub fn mkdir(&self, path: &str, opts: MkdirOpts) -> FsResult<()> {
        self.stats.record(OpKind::Mkdir);
        self.p.mkdir_opts(path, Mode(0o755), opts)
    }

    /// `mkdir -p`.
    pub fn mkdir_p(&self, path: &str, opts: MkdirOpts) -> FsResult<()> {
        let comps = fsapi::path::components(path)?;
        let mut cur = String::new();
        for c in comps {
            cur.push('/');
            cur.push_str(c);
            match self.mkdir(&cur, opts) {
                Ok(()) | Err(Errno::EEXIST) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// `rmdir`.
    pub fn rmdir(&self, path: &str) -> FsResult<()> {
        self.stats.record(OpKind::Rmdir);
        self.p.rmdir(path)
    }

    /// `rename`.
    pub fn rename(&self, old: &str, new: &str) -> FsResult<()> {
        self.stats.record(OpKind::Rename);
        self.p.rename(old, new)
    }

    /// `readdir`.
    pub fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        self.stats.record(OpKind::Readdir);
        self.p.readdir(path)
    }

    /// `stat`.
    pub fn stat(&self, path: &str) -> FsResult<Stat> {
        self.stats.record(OpKind::Stat);
        self.p.stat(path)
    }

    /// `fstat`.
    pub fn fstat(&self, fd: Fd) -> FsResult<Stat> {
        self.stats.record(OpKind::Stat);
        self.p.fstat(fd)
    }

    /// Creates `path` with `data` as contents (creat + writes + close).
    pub fn put_file(&self, path: &str, data: &[u8]) -> FsResult<()> {
        let fd = self.open(
            path,
            OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC,
            Mode::default(),
        )?;
        self.write_all(fd, data)?;
        self.close(fd)
    }

    /// Reads all of `path`.
    pub fn get_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let fd = self.open(path, OpenFlags::RDONLY, Mode::default())?;
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            let n = self.read(fd, &mut buf)?;
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        self.close(fd)?;
        Ok(out)
    }

    /// Burns virtual CPU (application compute).
    pub fn compute(&self, cycles: u64) {
        self.p.compute(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let s = OpStats::default();
        s.record(OpKind::Read);
        s.record(OpKind::Read);
        s.record(OpKind::Write);
        s.record(OpKind::Creat);
        let rows = s.breakdown();
        let total_pct: f64 = rows.iter().map(|r| r.2).sum();
        assert!((total_pct - 100.0).abs() < 1e-9);
        assert_eq!(s.total(), 4);
        assert_eq!(s.get(OpKind::Read), 2);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = ALL_OPS.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), N_OPS);
    }
}
