//! `mailbench`: the sv6 mail-server benchmark (paper §5.2).
//!
//! Each process delivers messages the maildir way: write the message into
//! a shared spool directory, fsync it, then `rename` it atomically into
//! the recipient's mailbox. Periodically the mailbox is scanned, a message
//! read and deleted (pickup). The spool and mailboxes are distributed —
//! mailbench is one of the workloads the paper lists as using the
//! distribution flag, and one that benefits from creation affinity
//! (Figure 14: the creator immediately re-accesses the file).

use crate::ctx::Ctx;
use crate::scale::Scale;
use crate::trees::synth_data;
use fsapi::{FsResult, MkdirOpts, Mode, OpenFlags, ProcHandle};

const SPOOL: &str = "/mail/tmp";

fn mailbox(w: usize) -> String {
    format!("/mail/u{w}/new")
}

/// Creates the spool and one mailbox per process.
pub fn setup<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, _s: &Scale) -> FsResult<()> {
    ctx.mkdir_p(SPOOL, MkdirOpts::DISTRIBUTED)?;
    for w in 0..nprocs {
        ctx.mkdir_p(&mailbox(w), MkdirOpts::DISTRIBUTED)?;
    }
    Ok(())
}

/// Delivers `mail_msgs` messages per process; every fourth message the
/// mailbox is scanned and an old message picked up and deleted.
pub fn run<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, s: &Scale) -> FsResult<()> {
    let msgs = s.mail_msgs;
    crate::run_workers(ctx, nprocs, move |wctx, w| {
        let body = synth_data(w as u64, 2048);
        let inbox = mailbox(w);
        for i in 0..msgs {
            // Deliver: spool write + fsync + atomic rename into the inbox.
            let tmp = format!("{SPOOL}/w{w}_m{i}");
            let fd = wctx.open(
                &tmp,
                OpenFlags::CREAT | OpenFlags::WRONLY | OpenFlags::EXCL,
                Mode::default(),
            )?;
            wctx.write_all(fd, &body)?;
            wctx.fsync(fd)?;
            wctx.close(fd)?;
            wctx.rename(&tmp, &format!("{inbox}/m{i}"))?;
            wctx.add_ops(1);

            // Pickup: list the mailbox, read and delete the oldest message.
            if i % 4 == 3 {
                let entries = wctx.readdir(&inbox)?;
                if let Some(oldest) = entries.first() {
                    let path = fsapi::path::join(&inbox, &oldest.name);
                    let _ = wctx.get_file(&path)?;
                    wctx.unlink(&path)?;
                }
            }
        }
        Ok(())
    })
}
