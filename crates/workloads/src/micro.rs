//! The four operation microbenchmarks: creates, writes, renames,
//! directories (paper §5.2: "an individual operation is performed many
//! times ... within the same directory, to reduce variance").
//!
//! All four hammer one shared directory from every process, which is the
//! access pattern directory distribution exists for (Figure 10: creates is
//! ~4× faster with distribution). The paper lists creates, renames (and
//! the dense tests) among the workloads that opt into the distribution
//! flag; `directories` additionally creates its victim directories
//! *distributed* so its rmdirs exercise the broadcast path (Figure 11).

use crate::ctx::Ctx;
use crate::scale::Scale;
use fsapi::{FsResult, MkdirOpts, Mode, OpenFlags, ProcHandle, Whence};

const BENCH_DIR: &str = "/bench";

/// Shared setup: the one directory every process works in (idempotent so
/// several microbenchmarks can run on one system).
pub fn setup<P: ProcHandle>(ctx: &Ctx<'_, P>, _nprocs: usize, _s: &Scale) -> FsResult<()> {
    ctx.mkdir_p(BENCH_DIR, MkdirOpts::DISTRIBUTED)
}

/// `creates`: every process creates files in the shared directory.
pub fn run_creates<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, s: &Scale) -> FsResult<()> {
    let iters = s.iters;
    crate::run_workers(ctx, nprocs, move |wctx, w| {
        for i in 0..iters {
            let path = format!("{BENCH_DIR}/w{w}_f{i}");
            let fd = wctx.open(&path, OpenFlags::CREAT | OpenFlags::WRONLY, Mode::default())?;
            wctx.close(fd)?;
            wctx.add_ops(1);
        }
        Ok(())
    })
}

/// `writes`: every process rewrites blocks of its own file in the shared
/// directory.
pub fn run_writes<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, s: &Scale) -> FsResult<()> {
    let iters = s.iters;
    let chunk = s.write_chunk;
    crate::run_workers(ctx, nprocs, move |wctx, w| {
        let path = format!("{BENCH_DIR}/w{w}_data");
        let fd = wctx.open(&path, OpenFlags::CREAT | OpenFlags::RDWR, Mode::default())?;
        let data = crate::trees::synth_data(w as u64, chunk);
        // Rotate over 16 block-sized slots so the file stays bounded while
        // the write path (allocation + private-cache writes) is exercised.
        for i in 0..iters {
            let slot = (i % 16) as i64;
            wctx.lseek(fd, slot * chunk as i64, Whence::Set)?;
            wctx.write_all(fd, &data)?;
            wctx.add_ops(1);
        }
        wctx.close(fd)?;
        Ok(())
    })
}

/// `renames`: every process renames its file back and forth in the shared
/// directory (two dentry-server RPCs per operation: ADD_MAP + RM_MAP,
/// paper §5.3.3).
pub fn run_renames<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, s: &Scale) -> FsResult<()> {
    let iters = s.iters;
    crate::run_workers(ctx, nprocs, move |wctx, w| {
        let a = format!("{BENCH_DIR}/w{w}_a");
        let b = format!("{BENCH_DIR}/w{w}_b");
        wctx.put_file(&a, b"r")?;
        for i in 0..iters {
            if i % 2 == 0 {
                wctx.rename(&a, &b)?;
            } else {
                wctx.rename(&b, &a)?;
            }
            wctx.add_ops(1);
        }
        Ok(())
    })
}

/// `directories`: every process creates and removes directories in the
/// shared parent. The victims are *centralized* — §5.2 lists creates,
/// renames, pfind dense, mailbench and build linux as the workloads using
/// the distribution flag, and Figure 10 shows rmdir-heavy tests lose from
/// distributing small directories.
pub fn run_directories<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, s: &Scale) -> FsResult<()> {
    let iters = s.iters;
    crate::run_workers(ctx, nprocs, move |wctx, w| {
        for i in 0..iters {
            let d = format!("{BENCH_DIR}/w{w}_d{i}");
            wctx.mkdir(&d, MkdirOpts::CENTRALIZED)?;
            wctx.rmdir(&d)?;
            wctx.add_ops(1);
        }
        Ok(())
    })
}
