//! `fsstress`: randomized file system exerciser, borrowed by the paper
//! from the Linux Test Project (§5.2).
//!
//! Each process runs a seeded random mix of operations in its **own
//! subtree** — "each of the fsstress processes perform operations in
//! different subtrees" — which is why the paper runs it with directory
//! distribution off (its rmdirs on small directories would otherwise pay
//! the all-server broadcast, Figure 10).

use crate::ctx::Ctx;
use crate::scale::Scale;
use crate::trees::synth_data;
use fsapi::{Errno, FsResult, MkdirOpts, Mode, OpenFlags, ProcHandle, Whence};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

const ROOT: &str = "/stress";

/// Creates the shared parent; each process creates its own subtree when it
/// starts (as LTP fsstress does), so creation affinity places each subtree
/// near its owner rather than piling them on the setup process's server.
pub fn setup<P: ProcHandle>(ctx: &Ctx<'_, P>, _nprocs: usize, _s: &Scale) -> FsResult<()> {
    ctx.mkdir(ROOT, MkdirOpts::DISTRIBUTED)
}

/// Runs `fsstress_ops` random operations per process.
pub fn run<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, s: &Scale) -> FsResult<()> {
    let nops = s.fsstress_ops;
    crate::run_workers(ctx, nprocs, move |wctx, w| {
        let mut rng = ChaCha8Rng::seed_from_u64(0xF55 + w as u64);
        let base = format!("{ROOT}/w{w}");
        wctx.mkdir(&base, MkdirOpts::CENTRALIZED)?;
        let mut files: Vec<String> = Vec::new();
        let mut dirs: Vec<String> = vec![base.clone()];
        let mut seq = 0usize;

        for _ in 0..nops {
            let roll = rng.gen_range(0..100);
            match roll {
                // create
                0..=24 => {
                    let dir = dirs.choose(&mut rng).expect("base dir always present");
                    let path = format!("{dir}/f{seq}");
                    seq += 1;
                    let fd =
                        wctx.open(&path, OpenFlags::CREAT | OpenFlags::WRONLY, Mode::default())?;
                    wctx.close(fd)?;
                    files.push(path);
                }
                // write
                25..=39 => {
                    if let Some(path) = files.choose(&mut rng) {
                        let fd = wctx.open(path, OpenFlags::WRONLY, Mode::default())?;
                        let off = rng.gen_range(0..8) * 1024;
                        wctx.lseek(fd, off, Whence::Set)?;
                        wctx.write_all(fd, &synth_data(seq as u64, 1024))?;
                        wctx.close(fd)?;
                    }
                }
                // read
                40..=54 => {
                    if let Some(path) = files.choose(&mut rng) {
                        let fd = wctx.open(path, OpenFlags::RDONLY, Mode::default())?;
                        let mut buf = [0u8; 1024];
                        let _ = wctx.read(fd, &mut buf)?;
                        wctx.close(fd)?;
                    }
                }
                // unlink
                55..=64 => {
                    if !files.is_empty() {
                        let i = rng.gen_range(0..files.len());
                        let path = files.swap_remove(i);
                        wctx.unlink(&path)?;
                    }
                }
                // mkdir
                65..=74 => {
                    let parent = dirs.choose(&mut rng).expect("nonempty");
                    let path = format!("{parent}/d{seq}");
                    seq += 1;
                    wctx.mkdir(&path, MkdirOpts::CENTRALIZED)?;
                    dirs.push(path);
                }
                // rmdir (may be non-empty: tolerated, like fsstress itself)
                75..=82 => {
                    if dirs.len() > 1 {
                        let i = rng.gen_range(1..dirs.len());
                        match wctx.rmdir(&dirs[i]) {
                            Ok(()) => {
                                dirs.swap_remove(i);
                            }
                            Err(Errno::ENOTEMPTY) => {}
                            Err(e) => return Err(e),
                        }
                    }
                }
                // rename
                83..=89 => {
                    if !files.is_empty() {
                        let i = rng.gen_range(0..files.len());
                        let dir = dirs.choose(&mut rng).expect("nonempty").clone();
                        let new = format!("{dir}/r{seq}");
                        seq += 1;
                        wctx.rename(&files[i], &new)?;
                        files[i] = new;
                    }
                }
                // stat
                90..=94 => {
                    if let Some(path) = files.choose(&mut rng) {
                        wctx.stat(path)?;
                    } else {
                        wctx.stat(&base)?;
                    }
                }
                // readdir
                _ => {
                    let dir = dirs.choose(&mut rng).expect("nonempty");
                    let _ = wctx.readdir(dir)?;
                }
            }
            wctx.add_ops(1);
        }
        Ok(())
    })
}
