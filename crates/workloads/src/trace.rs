//! Trace-replay workloads: a syscall-level trace format, a synthetic-mix
//! generator, and a deterministic virtual-time replay driver.
//!
//! The fig suite is closed-loop microbenches: every worker issues its next
//! operation the instant the previous one returns. Production traffic is
//! nothing like that — it is bursty, phased, and mixed, and the behaviors
//! the dynamic subsystems exist for (rebalancing reacting to a shifting
//! hotspot, write-behind absorbing a burst) only show up *over time*. A
//! trace captures that shape: per-client operation streams with **think
//! times** between operations, scheduled on the virtual clock.
//!
//! ## The format (see `docs/traces.md`)
//!
//! One operation per line, whitespace-separated; `#` starts a comment:
//!
//! ```text
//! # client think-vticks op path [arg]
//! 0 120 creat /build/obj/a.o 4096
//! 0  40 stat  /build/src/a.c
//! 1 500 rename /spool/tmp/m1 /spool/new/m1
//! ```
//!
//! `client` names the logical client issuing the operation (streams of one
//! client replay in order; different clients interleave by virtual time).
//! `think-vticks` is idle time **before** the operation, in vticks
//! ([`VTICK_CYCLES`] virtual cycles = 1 virtual µs), measured from the
//! completion of the client's previous operation.
//!
//! ## Determinism
//!
//! [`replay`] multiplexes every logical client onto the calling thread,
//! executing operations in scheduled-start order (ties broken by client
//! id). One operation is in flight at a time, so the servers observe a
//! deterministic request sequence and every virtual-time outcome — op
//! completion times, message counts, per-server load — is **byte-for-byte
//! reproducible** across runs. That is what lets `BENCH_micro_trace.json`
//! commit an exact time series and lets CI diff metrics JSON byte-wise
//! (pinned by `crates/bench/tests/trace_replay.rs`).

use fsapi::{Errno, FsResult, MkdirOpts, Mode, OpenFlags, ProcFs, VClock, Whence};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Virtual cycles per trace think-time tick: 1 vtick = 1 virtual µs.
pub const VTICK_CYCLES: u64 = vtime::CYCLES_PER_US;

/// One traced file system operation (the syscall-level surface traces
/// capture; descriptor management is implicit — data ops open and close
/// around the transfer, the tar/maildir idiom).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Create (or truncate) a file and write `size` bytes.
    Creat { path: String, size: u64 },
    /// Open read-only and read up to `size` bytes.
    Read { path: String, size: u64 },
    /// Open, seek to end, append `size` bytes.
    Append { path: String, size: u64 },
    /// `stat` the path.
    Stat { path: String },
    /// Remove the file.
    Unlink { path: String },
    /// Create a directory (centralized unless the system default says
    /// otherwise — hot-spot traces want a migratable shard).
    Mkdir { path: String },
    /// Remove an empty directory.
    Rmdir { path: String },
    /// Atomic rename.
    Rename { old: String, new: String },
    /// List a directory.
    Readdir { path: String },
}

impl TraceOp {
    /// The op keyword as it appears in the text format.
    pub fn keyword(&self) -> &'static str {
        match self {
            TraceOp::Creat { .. } => "creat",
            TraceOp::Read { .. } => "read",
            TraceOp::Append { .. } => "append",
            TraceOp::Stat { .. } => "stat",
            TraceOp::Unlink { .. } => "unlink",
            TraceOp::Mkdir { .. } => "mkdir",
            TraceOp::Rmdir { .. } => "rmdir",
            TraceOp::Rename { .. } => "rename",
            TraceOp::Readdir { .. } => "readdir",
        }
    }
}

/// One line of a trace: which client, how long it thinks first, what it
/// does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Logical client issuing the operation (dense small integers).
    pub client: usize,
    /// Idle vticks between the client's previous completion and this
    /// operation's start.
    pub think: u64,
    /// The operation.
    pub op: TraceOp,
}

/// A parsed trace: named, ordered records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Trace name (from the `# name:` header, or `"trace"`).
    pub name: String,
    /// Directories the trace assumes exist (`# dir:` headers) — replay
    /// setup creates these before the first record runs; how (distributed
    /// or centralized, pinned where) is the replayer's scenario choice.
    pub dirs: Vec<String>,
    /// Records in file order (per-client order is replay order).
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Parses the text format. Errors carry the 1-based line number.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut name = String::from("trace");
        let mut dirs = Vec::new();
        let mut records = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if let Some(rest) = line.strip_prefix('#') {
                if let Some(n) = rest.trim().strip_prefix("name:") {
                    name = n.trim().to_string();
                } else if let Some(d) = rest.trim().strip_prefix("dir:") {
                    dirs.push(d.trim().to_string());
                }
                continue;
            }
            if line.is_empty() {
                continue;
            }
            let mut f = line.split_whitespace();
            let err = |what: &str| format!("line {lineno}: {what}: {line:?}");
            let client: usize = f
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("bad client id"))?;
            let think: u64 = f
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("bad think time"))?;
            let kw = f.next().ok_or_else(|| err("missing op"))?;
            let mut path = |what: &str| -> Result<String, String> {
                let p = f.next().ok_or_else(|| err(what))?;
                if !p.starts_with('/') {
                    return Err(err("path must be absolute"));
                }
                Ok(p.to_string())
            };
            let op = match kw {
                "creat" | "read" | "append" => {
                    let p = path("missing path")?;
                    let size: u64 = f
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad size"))?;
                    match kw {
                        "creat" => TraceOp::Creat { path: p, size },
                        "read" => TraceOp::Read { path: p, size },
                        _ => TraceOp::Append { path: p, size },
                    }
                }
                "stat" => TraceOp::Stat {
                    path: path("missing path")?,
                },
                "unlink" => TraceOp::Unlink {
                    path: path("missing path")?,
                },
                "mkdir" => TraceOp::Mkdir {
                    path: path("missing path")?,
                },
                "rmdir" => TraceOp::Rmdir {
                    path: path("missing path")?,
                },
                "readdir" => TraceOp::Readdir {
                    path: path("missing path")?,
                },
                "rename" => {
                    let old = path("missing old path")?;
                    let new = path("missing new path")?;
                    TraceOp::Rename { old, new }
                }
                other => return Err(err(&format!("unknown op {other:?}"))),
            };
            if f.next().is_some() {
                return Err(err("trailing fields"));
            }
            records.push(TraceRecord { client, think, op });
        }
        Ok(Trace {
            name,
            dirs,
            records,
        })
    }

    /// Renders the trace back to the text format ([`Trace::parse`] of the
    /// output is identity on the records).
    pub fn to_text(&self) -> String {
        let mut out = format!("# name: {}\n", self.name);
        for d in &self.dirs {
            out.push_str(&format!("# dir: {d}\n"));
        }
        out.push_str("# client think op path [arg]\n");
        for r in &self.records {
            out.push_str(&format!("{} {} ", r.client, r.think));
            match &r.op {
                TraceOp::Creat { path, size } => out.push_str(&format!("creat {path} {size}")),
                TraceOp::Read { path, size } => out.push_str(&format!("read {path} {size}")),
                TraceOp::Append { path, size } => out.push_str(&format!("append {path} {size}")),
                TraceOp::Stat { path } => out.push_str(&format!("stat {path}")),
                TraceOp::Unlink { path } => out.push_str(&format!("unlink {path}")),
                TraceOp::Mkdir { path } => out.push_str(&format!("mkdir {path}")),
                TraceOp::Rmdir { path } => out.push_str(&format!("rmdir {path}")),
                TraceOp::Rename { old, new } => out.push_str(&format!("rename {old} {new}")),
                TraceOp::Readdir { path } => out.push_str(&format!("readdir {path}")),
            }
            out.push('\n');
        }
        out
    }

    /// Number of logical clients (max client id + 1).
    pub fn nclients(&self) -> usize {
        self.records.iter().map(|r| r.client + 1).max().unwrap_or(0)
    }

    /// Total records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

// ----- Synthetic-mix generation -------------------------------------------

/// Relative operation weights of a synthetic mix (zero disables an op).
#[derive(Debug, Clone, Copy)]
pub struct MixWeights {
    /// Create + write + close.
    pub creat: u32,
    /// Open + read + close of an existing file.
    pub read: u32,
    /// `stat` of an existing file.
    pub stat: u32,
    /// Remove an existing file.
    pub unlink: u32,
    /// Rename an existing file within its directory.
    pub rename: u32,
    /// List the directory.
    pub readdir: u32,
}

impl Default for MixWeights {
    /// A metadata-heavy mix (the mail-spool shape: churn + probes).
    fn default() -> Self {
        MixWeights {
            creat: 3,
            read: 2,
            stat: 6,
            unlink: 2,
            rename: 1,
            readdir: 1,
        }
    }
}

/// Specification of a synthetic workload phase: clients hammer a weighted
/// set of directories with a weighted op mix and uniform think times.
#[derive(Debug, Clone)]
pub struct MixSpec {
    /// Trace name.
    pub name: String,
    /// Logical clients.
    pub clients: usize,
    /// Operations per client.
    pub ops_per_client: usize,
    /// RNG seed — the whole trace is a pure function of the spec.
    pub seed: u64,
    /// `(directory, weight)` pairs; weight is the relative probability an
    /// operation lands in that directory (the hotness knob).
    pub dirs: Vec<(String, u32)>,
    /// Think time range in vticks, sampled uniformly.
    pub think: std::ops::Range<u64>,
    /// Operation mix.
    pub weights: MixWeights,
    /// File payload size in bytes.
    pub file_size: u64,
}

/// Generates a synthetic-mix trace from `spec`: each client gets an
/// independent seeded stream; per-directory file populations are tracked
/// so reads/stats/unlinks always target files the trace has created (the
/// replay is failure-free by construction).
pub fn synth_mix(spec: &MixSpec) -> Trace {
    assert!(!spec.dirs.is_empty(), "need at least one directory");
    let dir_total: u32 = spec.dirs.iter().map(|(_, w)| w).sum();
    assert!(dir_total > 0, "all directory weights are zero");
    let mut records = Vec::with_capacity(spec.clients * spec.ops_per_client);
    for client in 0..spec.clients {
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ (client as u64).wrapping_mul(0x9E37));
        // Files this client has created and not yet removed, per directory.
        let mut live: Vec<Vec<String>> = vec![Vec::new(); spec.dirs.len()];
        let mut serial = 0u64;
        for _ in 0..spec.ops_per_client {
            let think = if spec.think.is_empty() {
                spec.think.start
            } else {
                rng.gen_range(spec.think.clone())
            };
            // Pick the directory by weight.
            let mut pick = rng.gen_range(0..dir_total);
            let mut di = 0;
            for (i, (_, w)) in spec.dirs.iter().enumerate() {
                if pick < *w {
                    di = i;
                    break;
                }
                pick -= w;
            }
            let dir = &spec.dirs[di].0;
            let w = &spec.weights;
            let total = w.creat + w.read + w.stat + w.unlink + w.rename + w.readdir;
            assert!(total > 0, "all op weights are zero");
            let mut roll = rng.gen_range(0..total);
            let mut kind = 5;
            let table = [w.creat, w.read, w.stat, w.unlink, w.rename, w.readdir];
            for (k, wt) in table.iter().enumerate() {
                if roll < *wt {
                    kind = k;
                    break;
                }
                roll -= wt;
            }
            // File ops need a live file in the directory; with none, fall
            // back to creat (only creat/readdir make sense on empty).
            if live[di].is_empty() && (1..=4).contains(&kind) {
                kind = 0;
            }
            let op = match kind {
                0 => {
                    serial += 1;
                    let path = format!("{dir}/c{client}f{serial}");
                    live[di].push(path.clone());
                    TraceOp::Creat {
                        path,
                        size: spec.file_size,
                    }
                }
                1 => {
                    let path = live[di].choose(&mut rng).expect("have").clone();
                    TraceOp::Read {
                        path,
                        size: spec.file_size,
                    }
                }
                2 => {
                    let path = live[di].choose(&mut rng).expect("have").clone();
                    TraceOp::Stat { path }
                }
                3 => {
                    let i = rng.gen_range(0..live[di].len());
                    let path = live[di].swap_remove(i);
                    TraceOp::Unlink { path }
                }
                4 => {
                    let i = rng.gen_range(0..live[di].len());
                    serial += 1;
                    let old = live[di][i].clone();
                    let new = format!("{dir}/c{client}r{serial}");
                    live[di][i] = new.clone();
                    TraceOp::Rename { old, new }
                }
                _ => TraceOp::Readdir { path: dir.clone() },
            };
            records.push(TraceRecord { client, think, op });
        }
    }
    Trace {
        name: spec.name.clone(),
        dirs: spec.dirs.iter().map(|(d, _)| d.clone()).collect(),
        records,
    }
}

/// Concatenates traces into one (phased workloads: each input is one
/// phase; per-client streams chain, so a client's first phase-2 operation
/// starts one think time after its last phase-1 completion). Directory
/// headers are merged, first occurrence wins.
pub fn concat(name: &str, phases: &[Trace]) -> Trace {
    let mut dirs: Vec<String> = Vec::new();
    let mut records = Vec::new();
    for p in phases {
        for d in &p.dirs {
            if !dirs.contains(d) {
                dirs.push(d.clone());
            }
        }
        records.extend(p.records.iter().cloned());
    }
    Trace {
        name: name.to_string(),
        dirs,
        records,
    }
}

// ----- Replay --------------------------------------------------------------

/// One observation the replay driver hands to its event callback. A
/// single callback (rather than one closure per event kind) lets the
/// caller drive *one* recorder — typically `hare_core`'s `TimeSeries` —
/// mutably from both arms.
#[derive(Debug)]
pub enum ReplayEvent<'a> {
    /// A window boundary was crossed at the given virtual time: every
    /// operation *starting* before it has completed. Fires once per
    /// elapsed multiple of the window width, in order, so an idle stretch
    /// shows up as consecutive boundaries with no ops in between. The
    /// natural point to sample counters and run background cadence work
    /// (e.g. a rebalance tick).
    Window(u64),
    /// An operation finished.
    Op {
        /// The trace record that ran.
        record: &'a TraceRecord,
        /// Virtual time of its completion.
        completed: u64,
        /// Whether it succeeded.
        ok: bool,
    },
}

/// Outcome of one trace replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Operations executed.
    pub ops: u64,
    /// Operations that returned an error.
    pub failures: u64,
    /// Virtual time of the last completion.
    pub end: u64,
}

/// Replays `trace` over `clients` (indexed by the records' client ids),
/// scheduling every operation on the virtual clock.
///
/// Execution is **deterministic**: the calling thread multiplexes all
/// logical clients, running operations one at a time in scheduled-start
/// order (client id breaks ties). A client's next start is its previous
/// completion plus the record's think time; [`VClock::vwait`] parks the
/// client's entity clock (idle, not busy) until then, so servers see
/// arrivals in nondecreasing virtual time and queueing delay accrues
/// exactly as if the clients ran concurrently.
///
/// `on_event` receives a [`ReplayEvent::Window`] once per elapsed
/// multiple of `window_cycles` (`0` disables windows) and a
/// [`ReplayEvent::Op`] after every operation.
///
/// Failed operations are counted, not fatal — a replay's failure count is
/// part of its result (the micro_trace gate asserts it is zero).
///
/// # Panics
///
/// Panics when `clients` is shorter than [`Trace::nclients`].
pub fn replay<C: ProcFs + VClock>(
    clients: &[C],
    trace: &Trace,
    window_cycles: u64,
    mut on_event: impl FnMut(ReplayEvent<'_>),
) -> ReplayOutcome {
    assert!(
        clients.len() >= trace.nclients(),
        "trace names client {} but only {} clients were provided",
        trace.nclients().saturating_sub(1),
        clients.len()
    );
    // Per-client streams of record indices, in trace order.
    let mut streams: Vec<std::collections::VecDeque<usize>> =
        vec![std::collections::VecDeque::new(); trace.nclients()];
    for (i, r) in trace.records.iter().enumerate() {
        streams[r.client].push_back(i);
    }
    // Scheduled start of each client's next record.
    let mut next_start: Vec<Option<u64>> = streams
        .iter()
        .enumerate()
        .map(|(c, s)| {
            s.front()
                .map(|&i| clients[c].vnow() + trace.records[i].think * VTICK_CYCLES)
        })
        .collect();
    let first = next_start.iter().flatten().min().copied().unwrap_or(0);
    let mut next_boundary = first
        .checked_div(window_cycles)
        .map_or(u64::MAX, |w| (w + 1) * window_cycles);
    let mut out = ReplayOutcome {
        ops: 0,
        failures: 0,
        end: first,
    };
    // The earliest scheduled client runs next; client id breaks ties so
    // the order is a pure function of the trace.
    while let Some((c, start)) = next_start
        .iter()
        .enumerate()
        .filter_map(|(c, s)| s.map(|t| (c, t)))
        .min_by_key(|&(c, t)| (t, c))
    {
        while start >= next_boundary {
            on_event(ReplayEvent::Window(next_boundary));
            next_boundary += window_cycles;
        }
        let idx = streams[c].pop_front().expect("scheduled client has work");
        let rec = &trace.records[idx];
        clients[c].vwait(start);
        let ok = exec_op(&clients[c], &rec.op).is_ok();
        let done = clients[c].vnow();
        out.ops += 1;
        out.failures += u64::from(!ok);
        out.end = out.end.max(done);
        on_event(ReplayEvent::Op {
            record: rec,
            completed: done,
            ok,
        });
        next_start[c] = streams[c]
            .front()
            .map(|&i| done + trace.records[i].think * VTICK_CYCLES);
    }
    // Close out the windows the tail of the run spans.
    while window_cycles > 0 && next_boundary <= out.end {
        on_event(ReplayEvent::Window(next_boundary));
        next_boundary += window_cycles;
    }
    out
}

/// Executes one traced operation through the POSIX surface.
fn exec_op<C: ProcFs>(c: &C, op: &TraceOp) -> FsResult<()> {
    /// Data ops move payload in bounded chunks (a trace size is logical,
    /// not a buffer).
    const CHUNK: usize = 16 * 1024;
    match op {
        TraceOp::Creat { path, size } => {
            let fd = c.open(
                path,
                OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC,
                Mode::default(),
            )?;
            let r = write_n(c, fd, *size);
            c.close(fd).and(r)
        }
        TraceOp::Append { path, size } => {
            let fd = c.open(path, OpenFlags::WRONLY, Mode::default())?;
            let r = c
                .lseek(fd, 0, Whence::End)
                .and_then(|_| write_n(c, fd, *size));
            c.close(fd).and(r)
        }
        TraceOp::Read { path, size } => {
            let fd = c.open(path, OpenFlags::RDONLY, Mode::default())?;
            let mut left = *size as usize;
            let mut buf = [0u8; CHUNK];
            let mut r = Ok(());
            while left > 0 {
                let want = left.min(CHUNK);
                match c.read(fd, &mut buf[..want]) {
                    Ok(0) => break,
                    Ok(n) => left -= n,
                    Err(e) => {
                        r = Err(e);
                        break;
                    }
                }
            }
            c.close(fd).and(r)
        }
        TraceOp::Stat { path } => c.stat(path).map(|_| ()),
        TraceOp::Unlink { path } => c.unlink(path),
        TraceOp::Mkdir { path } => c.mkdir_opts(path, Mode(0o755), MkdirOpts::default()),
        TraceOp::Rmdir { path } => c.rmdir(path),
        TraceOp::Rename { old, new } => c.rename(old, new),
        TraceOp::Readdir { path } => c.readdir(path).map(|_| ()),
    }
}

/// Writes `size` bytes of patterned payload to `fd` in bounded chunks.
fn write_n<C: ProcFs>(c: &C, fd: fsapi::Fd, size: u64) -> FsResult<()> {
    const CHUNK: usize = 16 * 1024;
    let buf = [0x5au8; CHUNK];
    let mut left = size as usize;
    while left > 0 {
        let want = left.min(CHUNK);
        let n = c.write(fd, &buf[..want])?;
        if n == 0 {
            return Err(Errno::EIO);
        }
        left -= n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# name: sample
# dir: /a
# a comment
0 120 creat /a/f1 4096

1 0 stat /a/f1
0 40 rename /a/f1 /a/f2
1 7 readdir /a
";

    #[test]
    fn parse_and_render_roundtrip() {
        let t = Trace::parse(SAMPLE).unwrap();
        assert_eq!(t.name, "sample");
        assert_eq!(t.dirs, vec!["/a"]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.nclients(), 2);
        assert_eq!(
            t.records[0],
            TraceRecord {
                client: 0,
                think: 120,
                op: TraceOp::Creat {
                    path: "/a/f1".into(),
                    size: 4096
                }
            }
        );
        assert_eq!(
            t.records[2].op,
            TraceOp::Rename {
                old: "/a/f1".into(),
                new: "/a/f2".into()
            }
        );
        let again = Trace::parse(&t.to_text()).unwrap();
        assert_eq!(again, t);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        for (text, what) in [
            ("0 nope stat /a", "bad think"),
            ("0 1 frobnicate /a", "unknown op"),
            ("0 1 stat", "missing path"),
            ("0 1 stat relative/path", "absolute"),
            ("0 1 creat /a/f", "bad size"),
            ("0 1 stat /a extra", "trailing"),
        ] {
            let e = Trace::parse(text).unwrap_err();
            assert!(e.contains("line 1"), "{e}");
            assert!(
                e.to_lowercase().contains(&what.to_lowercase()),
                "{e} should mention {what}"
            );
        }
    }

    fn spec() -> MixSpec {
        MixSpec {
            name: "mix".into(),
            clients: 3,
            ops_per_client: 200,
            seed: 42,
            dirs: vec![("/hot".into(), 8), ("/cold".into(), 2)],
            think: 10..500,
            weights: MixWeights::default(),
            file_size: 1024,
        }
    }

    #[test]
    fn synth_mix_is_deterministic() {
        let a = synth_mix(&spec());
        let b = synth_mix(&spec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 600);
        assert_eq!(a.nclients(), 3);
        // A different seed produces a different trace.
        let mut s = spec();
        s.seed = 43;
        assert_ne!(synth_mix(&s), a);
    }

    #[test]
    fn synth_mix_targets_existing_files() {
        // Every read/stat/unlink/rename source must have been created (and
        // not removed) earlier in the same client's stream.
        let t = synth_mix(&spec());
        let mut live: std::collections::HashSet<(usize, &str)> = Default::default();
        for r in &t.records {
            match &r.op {
                TraceOp::Creat { path, .. } => {
                    live.insert((r.client, path));
                }
                TraceOp::Read { path, .. } | TraceOp::Stat { path } => {
                    assert!(live.contains(&(r.client, path.as_str())), "{path} unborn");
                }
                TraceOp::Unlink { path } => {
                    assert!(live.remove(&(r.client, path.as_str())), "{path} unborn");
                }
                TraceOp::Rename { old, new } => {
                    assert!(live.remove(&(r.client, old.as_str())), "{old} unborn");
                    live.insert((r.client, new));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn synth_mix_respects_hotness() {
        let t = synth_mix(&spec());
        let hot = t
            .records
            .iter()
            .filter(|r| match &r.op {
                TraceOp::Creat { path, .. }
                | TraceOp::Read { path, .. }
                | TraceOp::Stat { path }
                | TraceOp::Unlink { path }
                | TraceOp::Readdir { path } => path.starts_with("/hot"),
                TraceOp::Rename { old, .. } => old.starts_with("/hot"),
                _ => false,
            })
            .count();
        // 8:2 weights: the hot directory must dominate.
        assert!(hot * 10 > t.len() * 6, "{hot}/{} not hot enough", t.len());
    }
}
