//! `pfind dense` and `pfind sparse`: parallel `find` over the two tree
//! shapes.
//!
//! Every process walks the *whole* tree (readdir + stat each entry).
//! On the sparse tree the directories are centralized and few, so all `n`
//! clients resolve them at the same servers in the same order — the
//! single-server bottleneck the paper identifies as its worst-scaling case
//! ("each of the clients contacts the servers in the same order, resulting
//! in a bottleneck", §5.3.1).

use crate::ctx::Ctx;
use crate::scale::Scale;
use crate::trees;
use fsapi::{FsResult, ProcHandle};

const DENSE_ROOT: &str = "/pfind_dense";
const SPARSE_ROOT: &str = "/pfind_sparse";

/// Builds the dense tree (distributed directories; readdir benefits from
/// broadcast — Figure 11 shows pfind dense gaining the most).
pub fn setup_dense<P: ProcHandle>(ctx: &Ctx<'_, P>, _nprocs: usize, s: &Scale) -> FsResult<()> {
    trees::build_dense(ctx, DENSE_ROOT, s)?;
    Ok(())
}

/// Each process runs a full `find` over the dense tree.
pub fn run_dense<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, _s: &Scale) -> FsResult<()> {
    crate::run_workers(ctx, nprocs, move |wctx, _w| {
        let visited = trees::walk_tree(wctx, DENSE_ROOT)?;
        wctx.add_ops(visited);
        Ok(())
    })
}

/// Builds the sparse tree (centralized directories).
pub fn setup_sparse<P: ProcHandle>(ctx: &Ctx<'_, P>, _nprocs: usize, s: &Scale) -> FsResult<()> {
    trees::build_sparse(ctx, SPARSE_ROOT, s)?;
    Ok(())
}

/// Each process runs a full `find` over the sparse tree.
pub fn run_sparse<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, _s: &Scale) -> FsResult<()> {
    crate::run_workers(ctx, nprocs, move |wctx, _w| {
        let visited = trees::walk_tree(wctx, SPARSE_ROOT)?;
        wctx.add_ops(visited);
        Ok(())
    })
}
