//! Workload size presets.
//!
//! The paper runs each microbenchmark for ~65,535 iterations, extracts the
//! Linux 3.0 kernel, and builds it (~1.2 M file system operations, §5.2).
//! A single-CPU reproduction runs every simulated core as a thread, so the
//! default sizes are scaled down while preserving each workload's *shape*
//! (op mix, sharing pattern, tree fan-out). `Scale::quick` is for tests;
//! `Scale::bench` for figure regeneration.

/// Size knobs for all thirteen workloads.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Per-process iterations for the microbenchmarks
    /// (creates/writes/renames/directories).
    pub iters: usize,
    /// Bytes written per `writes` iteration.
    pub write_chunk: usize,
    /// Dense tree: top-level directories.
    pub dense_top: usize,
    /// Dense tree: sub-levels below each top directory.
    pub dense_levels: usize,
    /// Dense tree: directories per sub-level.
    pub dense_dirs: usize,
    /// Dense tree: files per sub-level.
    pub dense_files: usize,
    /// Sparse tree: chain depth (paper: 14 levels, 2 subdirs per level).
    pub sparse_levels: usize,
    /// Archive size for `extract`, in 4 KiB records.
    pub archive_records: usize,
    /// `punzip`: files extracted per copy.
    pub punzip_files: usize,
    /// `mailbench`: messages delivered per process.
    pub mail_msgs: usize,
    /// `fsstress`: random operations per process.
    pub fsstress_ops: usize,
    /// `build linux`: compilation units.
    pub kbuild_units: usize,
    /// `build linux`: source directories.
    pub kbuild_dirs: usize,
    /// `build linux`: headers in `include/`.
    pub kbuild_headers: usize,
    /// `build linux`: virtual cycles one `cc` invocation burns.
    pub cc_cycles: u64,
}

impl Scale {
    /// Sizes for unit/integration tests (seconds of wall time).
    pub fn quick() -> Scale {
        Scale {
            iters: 24,
            write_chunk: 4096,
            dense_top: 2,
            dense_levels: 1,
            dense_dirs: 2,
            dense_files: 12,
            sparse_levels: 5,
            archive_records: 24,
            punzip_files: 10,
            mail_msgs: 12,
            fsstress_ops: 60,
            kbuild_units: 8,
            kbuild_dirs: 2,
            kbuild_headers: 4,
            cc_cycles: 200_000,
        }
    }

    /// Sizes for figure regeneration (minutes of wall time for the whole
    /// matrix). Iteration counts are large enough to amortize process
    /// startup, as the paper's 65,535-iteration runs do.
    pub fn bench() -> Scale {
        Scale {
            iters: 600,
            write_chunk: 4096,
            dense_top: 2,
            dense_levels: 2,
            dense_dirs: 3,
            dense_files: 100,
            sparse_levels: 12,
            archive_records: 400,
            punzip_files: 80,
            mail_msgs: 150,
            fsstress_ops: 600,
            kbuild_units: 120,
            kbuild_dirs: 8,
            kbuild_headers: 12,
            cc_cycles: 2_000_000,
        }
    }

    /// Sizes for the scheduled full-scale CI lane: closer to the paper's
    /// 65,535-iteration runs than `bench`, sized so the nightly matrix at
    /// 64 cores finishes in tens of minutes rather than hours. Tree and
    /// build shapes stay at `bench` proportions — only the amortizable
    /// iteration counts grow.
    pub fn full() -> Scale {
        Scale {
            iters: 4_000,
            mail_msgs: 1_000,
            fsstress_ops: 4_000,
            kbuild_units: 400,
            ..Scale::bench()
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::bench()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_bench() {
        let q = Scale::quick();
        let b = Scale::bench();
        assert!(q.iters < b.iters);
        assert!(q.fsstress_ops < b.fsstress_ops);
        assert!(q.kbuild_units < b.kbuild_units);
    }

    #[test]
    fn full_is_larger_than_bench() {
        let b = Scale::bench();
        let f = Scale::full();
        assert!(f.iters > b.iters);
        assert!(f.mail_msgs > b.mail_msgs);
        assert_eq!(f.dense_files, b.dense_files, "tree shape stays at bench");
    }
}
