//! `rm dense` and `rm sparse`: parallel recursive removal of the two
//! paper tree shapes (§5.2).
//!
//! `rm sparse` is the workload that *loses* from directory distribution
//! (Figure 10): removing many nearly-empty directories turns each `rmdir`
//! into an all-server three-phase broadcast. The sparse tree is therefore
//! built centralized, as the paper's configuration does ("workloads such
//! as rm sparse ... perform worse with directory distribution enabled and
//! likewise run without this feature").

use crate::ctx::Ctx;
use crate::scale::Scale;
use crate::trees;
use fsapi::{FsResult, ProcHandle};

const DENSE_ROOT: &str = "/rm_dense";
const SPARSE_ROOT: &str = "/rm_sparse";

/// Builds the dense tree.
pub fn setup_dense<P: ProcHandle>(ctx: &Ctx<'_, P>, _nprocs: usize, s: &Scale) -> FsResult<()> {
    trees::build_dense(ctx, DENSE_ROOT, s)?;
    Ok(())
}

/// Removes the dense tree in parallel: the entries below each top-level
/// directory are partitioned round-robin over the processes; the skeleton
/// is removed by the driver afterwards.
pub fn run_dense<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, s: &Scale) -> FsResult<()> {
    // Flatten the first level of every top directory into a work list.
    let mut work: Vec<(String, bool)> = Vec::new();
    for t in 0..s.dense_top {
        let top = format!("{DENSE_ROOT}/top{t}");
        for e in ctx.readdir(&top)? {
            work.push((fsapi::path::join(&top, &e.name), e.ftype.is_dir()));
        }
    }
    let work = std::sync::Arc::new(work);

    crate::run_workers(ctx, nprocs, move |wctx, w| {
        for (i, (path, is_dir)) in work.iter().enumerate() {
            if i % nprocs != w {
                continue;
            }
            let removed = if *is_dir {
                trees::remove_tree(wctx, path)?
            } else {
                wctx.unlink(path)?;
                1
            };
            wctx.add_ops(removed);
        }
        Ok(())
    })?;

    // Remove the emptied skeleton.
    for t in 0..s.dense_top {
        ctx.rmdir(&format!("{DENSE_ROOT}/top{t}"))?;
        ctx.add_ops(1);
    }
    ctx.rmdir(DENSE_ROOT)?;
    ctx.add_ops(1);
    Ok(())
}

/// Builds the sparse tree.
pub fn setup_sparse<P: ProcHandle>(ctx: &Ctx<'_, P>, _nprocs: usize, s: &Scale) -> FsResult<()> {
    trees::build_sparse(ctx, SPARSE_ROOT, s)?;
    Ok(())
}

/// Removes the sparse tree: processes take the side branches and leaf
/// files of disjoint levels; the chain itself must come out bottom-up and
/// is removed by the driver.
pub fn run_sparse<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, s: &Scale) -> FsResult<()> {
    let levels = s.sparse_levels;
    crate::run_workers(ctx, nprocs, move |wctx, w| {
        let mut prefix = format!("{SPARSE_ROOT}/top");
        for l in 0..levels {
            if l % nprocs == w {
                wctx.rmdir(&format!("{prefix}/b{l}"))?;
                wctx.unlink(&format!("{prefix}/leaf{l}"))?;
                wctx.add_ops(2);
            }
            prefix = format!("{prefix}/a{l}");
        }
        Ok(())
    })?;

    // Remove the chain bottom-up.
    let mut chain: Vec<String> = Vec::new();
    let mut prefix = format!("{SPARSE_ROOT}/top");
    for l in 0..levels {
        prefix = format!("{prefix}/a{l}");
        chain.push(prefix.clone());
    }
    for dir in chain.iter().rev() {
        ctx.rmdir(dir)?;
        ctx.add_ops(1);
    }
    ctx.rmdir(&format!("{SPARSE_ROOT}/top"))?;
    ctx.rmdir(SPARSE_ROOT)?;
    ctx.add_ops(2);
    Ok(())
}
