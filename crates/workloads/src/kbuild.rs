//! `build linux`: the paper's flagship application benchmark (§1, §5.2) —
//! a parallel kernel-style build.
//!
//! The synthetic build preserves what makes `make` hard for a file system
//! without cache coherence:
//!
//! * make's **jobserver** is a pipe whose tokens bound build parallelism;
//!   the pipe is *shared by processes on every core*, which required a
//!   one-line change to make in the paper ("to flag the pipe of the
//!   jobserver as shared") and is exactly what Hare's server-side pipes
//!   provide.
//! * Every compile is a **remotely executed process** (`cc` spawned via the
//!   scheduling servers) inheriting the jobserver descriptors.
//! * Compiles read shared headers, write objects into shared distributed
//!   directories, and the link steps read many objects — the op mix that
//!   makes build linux issue ~1.2 M file system operations in the paper.

use crate::ctx::Ctx;
use crate::scale::Scale;
use crate::trees::synth_data;
use fsapi::{Errno, FsResult, MkdirOpts, ProcHandle};

const SRC: &str = "/src/linux";
const OBJ: &str = "/obj";

fn src_dir(k: usize) -> String {
    format!("{SRC}/d{k}")
}

fn obj_dir(k: usize) -> String {
    format!("{OBJ}/d{k}")
}

/// Generates the synthetic kernel tree: shared headers plus `kbuild_units`
/// compilation units spread over `kbuild_dirs` directories.
pub fn setup<P: ProcHandle>(ctx: &Ctx<'_, P>, _nprocs: usize, s: &Scale) -> FsResult<()> {
    ctx.mkdir_p(&format!("{SRC}/include"), MkdirOpts::DISTRIBUTED)?;
    for j in 0..s.kbuild_headers {
        ctx.put_file(
            &format!("{SRC}/include/h{j}.h"),
            &synth_data(j as u64, 2048),
        )?;
    }
    for k in 0..s.kbuild_dirs {
        ctx.mkdir(&src_dir(k), MkdirOpts::DISTRIBUTED)?;
        ctx.mkdir_p(&obj_dir(k), MkdirOpts::DISTRIBUTED)?;
    }
    for u in 0..s.kbuild_units {
        let k = u % s.kbuild_dirs;
        ctx.put_file(
            &format!("{}/c{u}.c", src_dir(k)),
            &synth_data(1000 + u as u64, 4096),
        )?;
    }
    Ok(())
}

/// Runs the parallel build: compile every unit (jobserver-bounded), archive
/// each directory, link the image.
pub fn run<P: ProcHandle>(ctx: &Ctx<'_, P>, nprocs: usize, s: &Scale) -> FsResult<()> {
    // make -jN: the jobserver pipe holds N tokens.
    let (jr, jw) = ctx.pipe()?;
    let tokens = vec![b'T'; nprocs];
    ctx.write_all(jw, &tokens)?;

    // Compile phase: one `cc` process per unit, remotely executed; each
    // blocks on a jobserver token, so at most `nprocs` run concurrently.
    let nheaders = s.kbuild_headers;
    let ndirs = s.kbuild_dirs;
    let cc_cycles = s.cc_cycles;
    let mut joins = Vec::new();
    for u in 0..s.kbuild_units {
        joins.push(ctx.spawn(move |cc| {
            let body = || -> FsResult<()> {
                // Acquire a job token.
                let mut tok = [0u8; 1];
                if cc.read_full(jr, &mut tok)? != 1 {
                    return Err(Errno::EIO);
                }
                let k = u % ndirs;
                let source = cc.get_file(&format!("{}/c{u}.c", src_dir(k)))?;
                for h in 0..3usize.min(nheaders) {
                    let _ = cc.get_file(&format!("{SRC}/include/h{}.h", (u + h) % nheaders))?;
                }
                cc.compute(cc_cycles);
                cc.put_file(
                    &format!("{}/c{u}.o", obj_dir(k)),
                    &synth_data(2000 + u as u64, source.len()),
                )?;
                cc.add_ops(1);
                // Release the token.
                cc.write_all(jw, &tok)?;
                Ok(())
            };
            match body() {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("cc {u} failed: {e}");
                    1
                }
            }
        })?);
    }
    let mut bad: i32 = joins.into_iter().map(|j| j.wait()).sum();

    // Archive phase: one `ar` per directory, also token-bounded.
    let mut joins = Vec::new();
    for k in 0..s.kbuild_dirs {
        joins.push(ctx.spawn(move |ar| {
            let body = || -> FsResult<()> {
                let mut tok = [0u8; 1];
                if ar.read_full(jr, &mut tok)? != 1 {
                    return Err(Errno::EIO);
                }
                let dir = obj_dir(k);
                let mut total = 0usize;
                for e in ar.readdir(&dir)? {
                    if e.name.ends_with(".o") {
                        total += ar.get_file(&fsapi::path::join(&dir, &e.name))?.len();
                    }
                }
                ar.compute(total as u64 / 8);
                ar.put_file(&format!("{dir}/built-in.a"), &synth_data(k as u64, total))?;
                ar.add_ops(1);
                ar.write_all(jw, &tok)?;
                Ok(())
            };
            match body() {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("ar {k} failed: {e}");
                    1
                }
            }
        })?);
    }
    bad += joins.into_iter().map(|j| j.wait()).sum::<i32>();

    // Link phase: the final image, by the make process itself.
    let mut total = 0usize;
    for k in 0..s.kbuild_dirs {
        total += ctx.get_file(&format!("{}/built-in.a", obj_dir(k)))?.len();
    }
    ctx.compute(4 * s.cc_cycles);
    ctx.put_file(
        &format!("{OBJ}/vmlinux"),
        &synth_data(0xBEEF, total.min(1 << 20)),
    )?;
    ctx.add_ops(1);

    ctx.close(jr)?;
    ctx.close(jw)?;
    if bad != 0 {
        return Err(Errno::EIO);
    }
    Ok(())
}
