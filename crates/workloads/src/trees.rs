//! Directory tree and synthetic data generators.
//!
//! The paper's rm/pfind microbenchmarks run over two tree shapes (§5.2):
//! a *dense* tree ("2 top-level directories and 3 sub-levels with 10
//! directories and 2000 files per sub-level") and a *sparse* tree ("1
//! top-level directory and 14 sub-levels of directories with 2
//! subdirectories per level"). These generators reproduce the shapes at
//! configurable scale.

use crate::ctx::Ctx;
use crate::scale::Scale;
use fsapi::{FsResult, MkdirOpts, ProcHandle};

/// Deterministic pseudo-random bytes (content for generated files).
pub fn synth_data(seed: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
    while out.len() < len {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        out.extend_from_slice(&z.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Builds the dense tree under `root`; returns the top-level directory
/// paths (for work partitioning) and the total file count.
///
/// Layout per the paper: `dense_top` top-level dirs; under each, a chain of
/// `dense_levels` levels; each level holds `dense_dirs` directories (one of
/// which continues the chain) and `dense_files` small files. Dense
/// directories are distributed (they hold many entries — the case directory
/// distribution targets, Figure 10).
pub fn build_dense<P: ProcHandle>(
    ctx: &Ctx<'_, P>,
    root: &str,
    s: &Scale,
) -> FsResult<(Vec<String>, usize)> {
    ctx.mkdir_p(root, MkdirOpts::DISTRIBUTED)?;
    let mut tops = Vec::new();
    let mut files = 0usize;
    for t in 0..s.dense_top {
        let top = format!("{root}/top{t}");
        ctx.mkdir(&top, MkdirOpts::DISTRIBUTED)?;
        let mut cur = top.clone();
        for level in 0..s.dense_levels {
            for d in 0..s.dense_dirs {
                ctx.mkdir(&format!("{cur}/d{level}_{d}"), MkdirOpts::DISTRIBUTED)?;
            }
            for f in 0..s.dense_files {
                ctx.put_file(&format!("{cur}/f{level}_{f}"), b"dense")?;
                files += 1;
            }
            cur = format!("{cur}/d{level}_0");
        }
        tops.push(top);
    }
    Ok((tops, files))
}

/// Builds the sparse tree under `root`; returns the top-level directory.
///
/// A chain of `sparse_levels` levels with 2 subdirectories per level (one
/// continuing the chain) and one small file per level. Sparse directories
/// are centralized — the paper turns distribution *off* for them because
/// broadcasting rmdir/readdir over near-empty directories only adds cost
/// (Figure 10, `rm sparse` and `pfind sparse`).
pub fn build_sparse<P: ProcHandle>(ctx: &Ctx<'_, P>, root: &str, s: &Scale) -> FsResult<String> {
    ctx.mkdir_p(root, MkdirOpts::CENTRALIZED)?;
    let top = format!("{root}/top");
    ctx.mkdir(&top, MkdirOpts::CENTRALIZED)?;
    let mut cur = top.clone();
    for level in 0..s.sparse_levels {
        ctx.mkdir(&format!("{cur}/a{level}"), MkdirOpts::CENTRALIZED)?;
        ctx.mkdir(&format!("{cur}/b{level}"), MkdirOpts::CENTRALIZED)?;
        ctx.put_file(&format!("{cur}/leaf{level}"), b"sparse")?;
        cur = format!("{cur}/a{level}");
    }
    Ok(top)
}

/// Recursively removes `dir` (an `rm -r`): readdir, unlink files, recurse
/// into directories, rmdir. Returns entries removed.
pub fn remove_tree<P: ProcHandle>(ctx: &Ctx<'_, P>, dir: &str) -> FsResult<u64> {
    let mut removed = 0u64;
    for e in ctx.readdir(dir)? {
        let path = fsapi::path::join(dir, &e.name);
        if e.ftype.is_dir() {
            removed += remove_tree(ctx, &path)?;
        } else {
            ctx.unlink(&path)?;
            removed += 1;
        }
    }
    ctx.rmdir(dir)?;
    Ok(removed + 1)
}

/// Recursively walks `dir` (a `find`): readdir + stat every entry.
/// Returns entries visited.
pub fn walk_tree<P: ProcHandle>(ctx: &Ctx<'_, P>, dir: &str) -> FsResult<u64> {
    let mut visited = 0u64;
    for e in ctx.readdir(dir)? {
        let path = fsapi::path::join(dir, &e.name);
        ctx.stat(&path)?;
        visited += 1;
        if e.ftype.is_dir() {
            visited += walk_tree(ctx, &path)?;
        }
    }
    Ok(visited)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_data_is_deterministic() {
        assert_eq!(synth_data(7, 100), synth_data(7, 100));
        assert_ne!(synth_data(7, 100), synth_data(8, 100));
        assert_eq!(synth_data(1, 13).len(), 13);
    }
}
