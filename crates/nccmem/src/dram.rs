//! Shared DRAM: the single physical memory all cores can address.

use crate::BLOCK_SIZE;
use parking_lot::Mutex;

/// Index of one [`BLOCK_SIZE`] block in shared DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// The shared physical memory, divided into fixed-size blocks.
///
/// A real memory controller serializes accesses to a line; we model that
/// atomicity at block granularity with one lock per block. The lock is an
/// artifact of simulating hardware — it does **not** give cores coherence,
/// because cores normally access DRAM only through their [`PrivateCache`]
/// and see its possibly-stale contents.
///
/// In Hare the buffer cache lives here: 2 GB in the paper's setup, divided
/// into per-server partitions of free blocks (paper §3.2). Partitioning is
/// done by the file servers; `Dram` itself is just flat storage.
///
/// [`PrivateCache`]: crate::PrivateCache
pub struct Dram {
    blocks: Vec<Mutex<Box<[u8]>>>,
}

impl Dram {
    /// Allocates a DRAM of `nblocks` blocks, zero-initialized.
    pub fn new(nblocks: usize) -> Self {
        Dram {
            blocks: (0..nblocks)
                .map(|_| Mutex::new(vec![0u8; BLOCK_SIZE].into_boxed_slice()))
                .collect(),
        }
    }

    /// Total number of blocks.
    pub fn nblocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.blocks.len() * BLOCK_SIZE
    }

    /// Copies bytes out of a block, starting at `offset` within the block.
    ///
    /// # Panics
    ///
    /// Panics if the block id is out of range or `offset + buf.len()`
    /// exceeds [`BLOCK_SIZE`]; both indicate a protocol bug, not a user
    /// error.
    pub fn read(&self, block: BlockId, offset: usize, buf: &mut [u8]) {
        let guard = self.blocks[block.0].lock();
        buf.copy_from_slice(&guard[offset..offset + buf.len()]);
    }

    /// Copies bytes into a block, starting at `offset` within the block.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range block id or block overflow (protocol bug).
    pub fn write(&self, block: BlockId, offset: usize, data: &[u8]) {
        let mut guard = self.blocks[block.0].lock();
        guard[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Copies a whole block out of DRAM.
    pub fn read_block(&self, block: BlockId, buf: &mut [u8; BLOCK_SIZE]) {
        let guard = self.blocks[block.0].lock();
        buf.copy_from_slice(&guard[..]);
    }

    /// Copies a whole block into DRAM.
    pub fn write_block(&self, block: BlockId, data: &[u8]) {
        debug_assert!(data.len() <= BLOCK_SIZE);
        let mut guard = self.blocks[block.0].lock();
        guard[..data.len()].copy_from_slice(data);
    }

    /// Zeroes a block (used when a server recycles a freed block, so freed
    /// data never leaks into a newly allocated file).
    pub fn zero(&self, block: BlockId) {
        let mut guard = self.blocks[block.0].lock();
        guard.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let d = Dram::new(2);
        d.write(BlockId(1), 100, b"hello");
        let mut buf = [0u8; 5];
        d.read(BlockId(1), 100, &mut buf);
        assert_eq!(&buf, b"hello");
        // Block 0 untouched.
        d.read(BlockId(0), 100, &mut buf);
        assert_eq!(buf, [0u8; 5]);
    }

    #[test]
    fn zero_clears_block() {
        let d = Dram::new(1);
        d.write(BlockId(0), 0, &[0xff; 16]);
        d.zero(BlockId(0));
        let mut buf = [0xaau8; 16];
        d.read(BlockId(0), 0, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn capacity_accounting() {
        let d = Dram::new(10);
        assert_eq!(d.nblocks(), 10);
        assert_eq!(d.capacity(), 10 * BLOCK_SIZE);
    }

    #[test]
    fn whole_block_io() {
        let d = Dram::new(1);
        let data = [7u8; BLOCK_SIZE];
        d.write_block(BlockId(0), &data);
        let mut out = [0u8; BLOCK_SIZE];
        d.read_block(BlockId(0), &mut out);
        assert_eq!(out[0], 7);
        assert_eq!(out[BLOCK_SIZE - 1], 7);
    }

    #[test]
    #[should_panic]
    fn out_of_range_block_panics() {
        let d = Dram::new(1);
        let mut buf = [0u8; 1];
        d.read(BlockId(5), 0, &mut buf);
    }
}
