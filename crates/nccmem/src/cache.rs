//! One core's private write-back cache.

use crate::dram::{BlockId, Dram};
use crate::stats::CacheStats;
use crate::BLOCK_SIZE;
use std::collections::HashMap;

/// What the cache hardware did to satisfy an access.
///
/// The caller (the virtual-time layer) charges the corresponding cost:
/// private-cache hits are cheap, DRAM fetches are expensive, and evictions
/// add a write-back on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Served from the private cache.
    Hit,
    /// Block fetched from DRAM into the private cache.
    Miss,
    /// Block fetched from DRAM and a dirty victim was written back.
    MissEvictDirty,
}

impl Access {
    /// True unless the access hit in the private cache.
    pub fn is_miss(self) -> bool {
        !matches!(self, Access::Hit)
    }
}

/// A cached copy of one DRAM block.
struct Line {
    data: Box<[u8]>,
    dirty: bool,
    /// LRU timestamp (monotone per-cache counter).
    used: u64,
}

/// One core's private cache, deliberately non-coherent.
///
/// * Reads return the cached copy if present — even if DRAM has since been
///   updated by another core (stale reads are the point).
/// * Writes are **write-back**: they dirty the private copy and reach DRAM
///   only on [`PrivateCache::writeback`] or dirty eviction, exactly the
///   hazard Hare's invalidation/write-back protocol exists to manage
///   (paper §3.2).
/// * Capacity is bounded; the LRU victim is evicted on overflow, with dirty
///   victims written back to DRAM (as real write-back hardware does).
///
/// A `PrivateCache` models hardware owned by a single core, so it is not
/// `Sync`; the machine layer wraps it in a per-core lock because several
/// simulated processes time-share one core.
pub struct PrivateCache {
    lines: HashMap<BlockId, Line>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl PrivateCache {
    /// Creates a cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        PrivateCache {
            lines: HashMap::new(),
            capacity,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// True if `block` is present (regardless of dirtiness).
    pub fn contains(&self, block: BlockId) -> bool {
        self.lines.contains_key(&block)
    }

    /// True if `block` is present and dirty.
    pub fn is_dirty(&self, block: BlockId) -> bool {
        self.lines.get(&block).is_some_and(|l| l.dirty)
    }

    fn touch(&mut self, block: BlockId) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(line) = self.lines.get_mut(&block) {
            line.used = tick;
        }
    }

    /// Ensures `block` is resident, fetching from DRAM on miss.
    fn ensure(&mut self, dram: &Dram, block: BlockId) -> Access {
        if self.lines.contains_key(&block) {
            self.stats.hits += 1;
            self.touch(block);
            return Access::Hit;
        }
        let evicted_dirty = if self.lines.len() >= self.capacity {
            self.evict_lru(dram)
        } else {
            false
        };
        let mut data = vec![0u8; BLOCK_SIZE].into_boxed_slice();
        {
            let mut tmp = [0u8; BLOCK_SIZE];
            dram.read_block(block, &mut tmp);
            data.copy_from_slice(&tmp);
        }
        self.tick += 1;
        self.lines.insert(
            block,
            Line {
                data,
                dirty: false,
                used: self.tick,
            },
        );
        self.stats.misses += 1;
        if evicted_dirty {
            self.stats.dirty_evictions += 1;
            Access::MissEvictDirty
        } else {
            Access::Miss
        }
    }

    /// Evicts the least-recently-used line; returns true if it was dirty
    /// (and therefore written back to DRAM, as write-back hardware does).
    fn evict_lru(&mut self, dram: &Dram) -> bool {
        let victim = self
            .lines
            .iter()
            .min_by_key(|(_, l)| l.used)
            .map(|(b, _)| *b);
        if let Some(b) = victim {
            let line = self.lines.remove(&b).expect("victim exists");
            self.stats.evictions += 1;
            if line.dirty {
                dram.write_block(b, &line.data);
                return true;
            }
        }
        false
    }

    /// Reads bytes from `block` at `offset` through the cache.
    ///
    /// The data may be **stale** with respect to DRAM if this core cached
    /// the block before another core updated it: that is the defining
    /// behaviour of a non-coherent system.
    pub fn read(&mut self, dram: &Dram, block: BlockId, offset: usize, buf: &mut [u8]) -> Access {
        debug_assert!(offset + buf.len() <= BLOCK_SIZE);
        let access = self.ensure(dram, block);
        let line = self.lines.get(&block).expect("ensured");
        buf.copy_from_slice(&line.data[offset..offset + buf.len()]);
        access
    }

    /// Writes bytes into `block` at `offset` through the cache.
    ///
    /// The write stays in the private cache (dirty) until written back.
    pub fn write(&mut self, dram: &Dram, block: BlockId, offset: usize, data: &[u8]) -> Access {
        debug_assert!(offset + data.len() <= BLOCK_SIZE);
        let access = self.ensure(dram, block);
        let line = self.lines.get_mut(&block).expect("ensured");
        line.data[offset..offset + data.len()].copy_from_slice(data);
        line.dirty = true;
        self.stats.writes += 1;
        access
    }

    /// Discards the private copy of `block` without writing it back.
    ///
    /// Hare's client library invalidates a file's blocks when the file is
    /// opened, so the first read after open observes the latest data written
    /// back by other cores (paper §3.2). Returns true if a copy was present.
    pub fn invalidate(&mut self, block: BlockId) -> bool {
        let present = self.lines.remove(&block).is_some();
        if present {
            self.stats.invalidations += 1;
        }
        present
    }

    /// Invalidates many blocks; returns how many copies were dropped.
    pub fn invalidate_all<I: IntoIterator<Item = BlockId>>(&mut self, blocks: I) -> usize {
        blocks.into_iter().filter(|b| self.invalidate(*b)).count()
    }

    /// Writes `block` back to DRAM if dirty; returns true if a write-back
    /// happened.
    ///
    /// Hare's client library writes back a file's dirty blocks on `close`
    /// and `fsync` (paper §3.2).
    pub fn writeback(&mut self, dram: &Dram, block: BlockId) -> bool {
        if let Some(line) = self.lines.get_mut(&block) {
            if line.dirty {
                dram.write_block(block, &line.data);
                line.dirty = false;
                self.stats.writebacks += 1;
                return true;
            }
        }
        false
    }

    /// Writes back every dirty block in `blocks`; returns the count written.
    pub fn writeback_all<I: IntoIterator<Item = BlockId>>(
        &mut self,
        dram: &Dram,
        blocks: I,
    ) -> usize {
        blocks
            .into_iter()
            .filter(|b| self.writeback(dram, *b))
            .count()
    }

    /// Writes back **all** dirty lines (used at simulated shutdown).
    pub fn flush(&mut self, dram: &Dram) -> usize {
        let dirty: Vec<BlockId> = self
            .lines
            .iter()
            .filter(|(_, l)| l.dirty)
            .map(|(b, _)| *b)
            .collect();
        self.writeback_all(dram, dirty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Dram, PrivateCache) {
        (Dram::new(16), PrivateCache::new(4))
    }

    #[test]
    fn read_miss_then_hit() {
        let (dram, mut c) = setup();
        dram.write(BlockId(3), 0, b"abc");
        let mut buf = [0u8; 3];
        assert_eq!(c.read(&dram, BlockId(3), 0, &mut buf), Access::Miss);
        assert_eq!(&buf, b"abc");
        assert_eq!(c.read(&dram, BlockId(3), 0, &mut buf), Access::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn write_is_buffered_until_writeback() {
        let (dram, mut c) = setup();
        c.write(&dram, BlockId(0), 0, b"xyz");
        let mut raw = [0u8; 3];
        dram.read(BlockId(0), 0, &mut raw);
        assert_eq!(raw, [0, 0, 0], "write-back cache must not write through");
        assert!(c.is_dirty(BlockId(0)));
        assert!(c.writeback(&dram, BlockId(0)));
        dram.read(BlockId(0), 0, &mut raw);
        assert_eq!(&raw, b"xyz");
        assert!(!c.is_dirty(BlockId(0)));
        // Second writeback is a no-op.
        assert!(!c.writeback(&dram, BlockId(0)));
    }

    #[test]
    fn stale_read_after_remote_update() {
        let (dram, mut c) = setup();
        let mut buf = [0u8; 1];
        c.read(&dram, BlockId(0), 0, &mut buf);
        assert_eq!(buf[0], 0);
        // Another core (here: direct DRAM write) updates the block.
        dram.write(BlockId(0), 0, &[42]);
        c.read(&dram, BlockId(0), 0, &mut buf);
        assert_eq!(buf[0], 0, "must read the stale private copy");
        // Invalidation exposes the fresh value.
        assert!(c.invalidate(BlockId(0)));
        c.read(&dram, BlockId(0), 0, &mut buf);
        assert_eq!(buf[0], 42);
    }

    #[test]
    fn invalidate_discards_dirty_data() {
        let (dram, mut c) = setup();
        c.write(&dram, BlockId(1), 0, b"zz");
        assert!(c.invalidate(BlockId(1)));
        let mut buf = [9u8; 2];
        c.read(&dram, BlockId(1), 0, &mut buf);
        assert_eq!(buf, [0, 0], "invalidate must drop dirty data, not flush it");
    }

    #[test]
    fn lru_eviction_writes_back_dirty_victim() {
        let (dram, mut c) = setup();
        // Fill the 4-line cache; block 0 is dirty.
        c.write(&dram, BlockId(0), 0, b"d");
        for i in 1..4 {
            let mut b = [0u8];
            c.read(&dram, BlockId(i), 0, &mut b);
        }
        assert_eq!(c.len(), 4);
        // Touch 1..4 so block 0 is LRU, then bring in block 5.
        for i in 1..4 {
            let mut b = [0u8];
            c.read(&dram, BlockId(i), 0, &mut b);
        }
        let mut b = [0u8];
        let acc = c.read(&dram, BlockId(5), 0, &mut b);
        assert_eq!(acc, Access::MissEvictDirty);
        assert!(!c.contains(BlockId(0)));
        // The dirty data reached DRAM on eviction.
        let mut raw = [0u8];
        dram.read(BlockId(0), 0, &mut raw);
        assert_eq!(raw[0], b'd');
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn flush_writes_all_dirty_lines() {
        let (dram, mut c) = setup();
        c.write(&dram, BlockId(0), 0, b"a");
        c.write(&dram, BlockId(1), 0, b"b");
        let mut buf = [0u8];
        c.read(&dram, BlockId(2), 0, &mut buf);
        assert_eq!(c.flush(&dram), 2);
        let mut raw = [0u8];
        dram.read(BlockId(0), 0, &mut raw);
        assert_eq!(raw[0], b'a');
        dram.read(BlockId(1), 0, &mut raw);
        assert_eq!(raw[0], b'b');
    }

    #[test]
    fn invalidate_all_counts() {
        let (dram, mut c) = setup();
        let mut buf = [0u8];
        c.read(&dram, BlockId(0), 0, &mut buf);
        c.read(&dram, BlockId(1), 0, &mut buf);
        let n = c.invalidate_all([BlockId(0), BlockId(1), BlockId(2)]);
        assert_eq!(n, 2);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        PrivateCache::new(0);
    }
}
