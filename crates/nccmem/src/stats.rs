//! Cache event counters.

/// Counters of private-cache events, used both by tests (to assert protocol
/// behaviour) and by the evaluation (buffer-cache miss comparisons like the
/// paper's shared-vs-private buffer cache study in §5.4, "Direct Access to
/// Buffer Cache").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads/writes served from the private cache.
    pub hits: u64,
    /// Block fetches from DRAM.
    pub misses: u64,
    /// Writes buffered in the private cache.
    pub writes: u64,
    /// Explicit write-backs (close/fsync protocol).
    pub writebacks: u64,
    /// Explicit invalidations (open protocol).
    pub invalidations: u64,
    /// Lines evicted for capacity.
    pub evictions: u64,
    /// Evicted lines that were dirty (implicit hardware write-back).
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Total accesses that consulted the cache.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Field-wise sum of two stat blocks (for machine-wide aggregation).
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            writes: self.writes + other.writes,
            writebacks: self.writebacks + other.writebacks,
            invalidations: self.invalidations + other.invalidations,
            evictions: self.evictions + other.evictions,
            dirty_evictions: self.dirty_evictions + other.dirty_evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_edges() {
        let s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_fields() {
        let a = CacheStats {
            hits: 1,
            misses: 2,
            writes: 3,
            writebacks: 4,
            invalidations: 5,
            evictions: 6,
            dirty_evictions: 7,
        };
        let b = a;
        let m = a.merged(&b);
        assert_eq!(m.hits, 2);
        assert_eq!(m.dirty_evictions, 14);
    }
}
