//! Simulated non-cache-coherent shared memory.
//!
//! Hare targets machines with "private caches, shared DRAM, but no hardware
//! cache coherence" (paper Figure 1). The machine this reproduction runs on
//! *is* cache coherent, so — like the paper itself, which ran on a coherent
//! 40-core Xeon and used coherence only for message transport — we need the
//! incoherence to be a *software discipline*. Unlike the paper's informal
//! check ("we informally checked that Hare does not inadvertently rely on
//! shared memory", §4), this crate makes the discipline mechanically
//! enforceable:
//!
//! * [`Dram`] is the shared physical memory, divided into fixed-size
//!   [`BLOCK_SIZE`] blocks.
//! * [`PrivateCache`] is one core's private write-back cache. Reads hit a
//!   possibly **stale** private copy; writes are buffered dirty and invisible
//!   to other cores until an explicit [`PrivateCache::writeback`].
//!   [`PrivateCache::invalidate`] discards the private copy so the next read
//!   fetches fresh data from DRAM.
//!
//! Hare's close-to-open consistency protocol (invalidate file blocks on
//! `open`, write back dirty blocks on `close`/`fsync`, paper §3.2) is
//! implemented *on top of* these primitives, and the tests in this crate
//! demonstrate both directions: following the protocol yields fresh data,
//! skipping it observably yields stale data.
//!
//! Every operation reports what the "hardware" did (hit, miss, write-back)
//! via [`Access`] so the virtual-time layer can charge costs.

pub mod cache;
pub mod dram;
pub mod stats;

pub use cache::{Access, PrivateCache};
pub use dram::{BlockId, Dram};
pub use stats::CacheStats;

/// Size of one buffer-cache block in bytes (4 KiB, a page).
pub const BLOCK_SIZE: usize = 4096;

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline property: without the invalidate/writeback protocol,
    /// core 2 reads stale data; with the protocol it reads fresh data.
    #[test]
    fn incoherence_is_real_and_protocol_fixes_it() {
        let dram = Dram::new(8);
        let mut c1 = PrivateCache::new(4);
        let mut c2 = PrivateCache::new(4);
        let b = BlockId(0);

        // Both cores read the block: both now have private copies of zeros.
        let mut buf = [0u8; 4];
        c1.read(&dram, b, 0, &mut buf);
        c2.read(&dram, b, 0, &mut buf);
        assert_eq!(buf, [0, 0, 0, 0]);

        // Core 1 writes, but the write stays in its private cache.
        c1.write(&dram, b, 0, &[9, 9, 9, 9]);

        // Core 2 still sees the stale zeros: no coherence.
        c2.read(&dram, b, 0, &mut buf);
        assert_eq!(buf, [0, 0, 0, 0], "private caches must not be coherent");

        // Even DRAM does not have the data yet (write-back, not
        // write-through).
        let mut draw = [0u8; 4];
        dram.read(b, 0, &mut draw);
        assert_eq!(draw, [0, 0, 0, 0]);

        // Hare's protocol: writer writes back on close...
        c1.writeback(&dram, b);
        // ...and reader invalidates on open.
        c2.invalidate(b);
        c2.read(&dram, b, 0, &mut buf);
        assert_eq!(buf, [9, 9, 9, 9], "protocol must restore consistency");
    }
}
