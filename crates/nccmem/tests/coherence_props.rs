//! Property tests for the non-coherent memory model.
//!
//! The invariant under test is the one Hare's close-to-open protocol relies
//! on (paper §3.2): an arbitrary interleaving of reads and writes by two
//! cores, with write-back before invalidate between them, always yields the
//! last written data; and a core that never invalidates never observes
//! another core's write that happened after its own first read.

use nccmem::{BlockId, Dram, PrivateCache, BLOCK_SIZE};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Core `who` writes byte `val` at `off`.
    Write { who: usize, off: usize, val: u8 },
    /// Core `who` reads at `off`.
    Read { who: usize, off: usize },
    /// Core `who` writes back the block.
    Writeback { who: usize },
    /// Core `who` invalidates the block.
    Invalidate { who: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..2usize, 0..64usize, any::<u8>()).prop_map(|(who, off, val)| Op::Write {
            who,
            off,
            val
        }),
        (0..2usize, 0..64usize).prop_map(|(who, off)| Op::Read { who, off }),
        (0..2usize).prop_map(|who| Op::Writeback { who }),
        (0..2usize).prop_map(|who| Op::Invalidate { who }),
    ]
}

proptest! {
    /// A reference model per core: each core's view equals its private copy
    /// overlaid on the DRAM contents it last fetched. We model the full
    /// semantics and check the cache agrees byte-for-byte.
    #[test]
    fn per_core_view_matches_reference(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let dram = Dram::new(1);
        let b = BlockId(0);
        let mut caches = [PrivateCache::new(2), PrivateCache::new(2)];
        // Reference: DRAM bytes + per-core optional cached copy with a dirty
        // bit (write-back hardware only writes dirty lines back).
        let mut ref_dram = vec![0u8; BLOCK_SIZE];
        let mut ref_copy: [Option<(Vec<u8>, bool)>; 2] = [None, None];

        for op in &ops {
            match *op {
                Op::Write { who, off, val } => {
                    caches[who].write(&dram, b, off, &[val]);
                    let copy =
                        ref_copy[who].get_or_insert_with(|| (ref_dram.clone(), false));
                    copy.0[off] = val;
                    copy.1 = true;
                }
                Op::Read { who, off } => {
                    let mut got = [0u8];
                    caches[who].read(&dram, b, off, &mut got);
                    let copy =
                        ref_copy[who].get_or_insert_with(|| (ref_dram.clone(), false));
                    prop_assert_eq!(got[0], copy.0[off], "core {} off {}", who, off);
                }
                Op::Writeback { who } => {
                    caches[who].writeback(&dram, b);
                    if let Some((copy, dirty)) = &mut ref_copy[who] {
                        if *dirty {
                            ref_dram.copy_from_slice(copy);
                            *dirty = false;
                        }
                    }
                }
                Op::Invalidate { who } => {
                    caches[who].invalidate(b);
                    ref_copy[who] = None;
                }
            }
        }
    }

    /// Close-to-open as a property: after writer write-back + reader
    /// invalidate, the reader observes every byte the writer wrote.
    #[test]
    fn close_to_open_transfers_everything(
        writes in prop::collection::vec((0..256usize, any::<u8>()), 1..40)
    ) {
        let dram = Dram::new(1);
        let b = BlockId(0);
        let mut w = PrivateCache::new(2);
        let mut r = PrivateCache::new(2);

        // Reader caches the block first (worst case for staleness).
        let mut tmp = [0u8];
        r.read(&dram, b, 0, &mut tmp);

        let mut expect = vec![0u8; 256];
        for &(off, val) in &writes {
            w.write(&dram, b, off, &[val]);
            expect[off] = val;
        }
        // Protocol: close at writer, open at reader.
        w.writeback(&dram, b);
        r.invalidate(b);

        let mut got = vec![0u8; 256];
        r.read(&dram, b, 0, &mut got);
        prop_assert_eq!(got, expect);
    }
}
