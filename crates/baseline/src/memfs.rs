//! A coherent shared-memory in-memory file system.
//!
//! This is the functional core both baselines wrap:
//!
//! * **ramfs** (the paper's Linux ramfs/tmpfs comparator) uses it directly —
//!   on a cache-coherent machine shared data structures under locks are
//!   exactly how Linux implements tmpfs, including the per-directory lock
//!   that serializes namespace operations (paper §2.1 cites directory locks
//!   as the classic CC-SMP scalability bottleneck).
//! * **unfs** (the UNFS3 comparator) uses it as the server-side state of a
//!   single user-space NFS daemon.
//!
//! The structures are deliberately simple: an inode table of
//! `Arc<MemInode>`, `BTreeMap` directories, `Vec<u8>` file data. Orphan
//! semantics (unlinked-but-open files) fall out of `Arc` reachability:
//! open descriptors hold the inode alive after the namespace drops it.
//!
//! Virtual-time cost accounting lives in the wrapping baselines; this core
//! exposes the serialization points ([`vtime::ResourceClock`] per directory
//! and per file) they charge against.

use fsapi::{DirEntry, Errno, FileType, FsResult, Stat};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use vtime::ResourceClock;

/// One in-memory inode.
pub struct MemInode {
    /// Inode number.
    pub ino: u64,
    /// Object type.
    pub ftype: FileType,
    /// Permission bits.
    pub mode: u16,
    /// Hard link count.
    pub nlink: AtomicU32,
    /// File contents (empty for directories).
    pub data: RwLock<Vec<u8>>,
    /// Directory entries (empty for files).
    pub children: Mutex<BTreeMap<String, Arc<MemInode>>>,
    /// Virtual serialization point: the directory's lock (Linux `i_mutex`).
    pub dir_clock: ResourceClock,
    /// Virtual serialization point: exclusive writes to the file.
    pub file_clock: ResourceClock,
}

impl MemInode {
    fn new(ino: u64, ftype: FileType, mode: u16) -> Arc<MemInode> {
        Arc::new(MemInode {
            ino,
            ftype,
            mode,
            nlink: AtomicU32::new(1),
            data: RwLock::new(Vec::new()),
            children: Mutex::new(BTreeMap::new()),
            dir_clock: ResourceClock::new(),
            file_clock: ResourceClock::new(),
        })
    }

    /// Current file size.
    pub fn size(&self) -> u64 {
        self.data.read().len() as u64
    }

    /// Builds a `stat` view.
    pub fn stat(&self) -> Stat {
        Stat {
            ino: self.ino,
            server: 0,
            ftype: self.ftype,
            size: self.size(),
            nlink: self.nlink.load(Ordering::SeqCst),
            mode: self.mode,
            blocks: self.size().div_ceil(4096),
        }
    }
}

/// The coherent in-memory file system.
pub struct MemFs {
    root: Arc<MemInode>,
    next_ino: AtomicU64,
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl MemFs {
    /// An empty file system with a root directory.
    pub fn new() -> Self {
        MemFs {
            root: MemInode::new(1, FileType::Directory, 0o755),
            next_ino: AtomicU64::new(2),
        }
    }

    /// The root inode.
    pub fn root(&self) -> Arc<MemInode> {
        Arc::clone(&self.root)
    }

    fn alloc_ino(&self) -> u64 {
        self.next_ino.fetch_add(1, Ordering::SeqCst)
    }

    /// Resolves a path to an inode. `steps_out`, when provided, receives
    /// the number of components walked (for cost accounting).
    pub fn resolve(&self, path: &str, steps_out: Option<&mut usize>) -> FsResult<Arc<MemInode>> {
        let comps = fsapi::path::components(path)?;
        if let Some(s) = steps_out {
            *s = comps.len();
        }
        let mut cur = self.root();
        for c in comps {
            if cur.ftype != FileType::Directory {
                return Err(Errno::ENOTDIR);
            }
            let next = cur.children.lock().get(c).cloned().ok_or(Errno::ENOENT)?;
            cur = next;
        }
        Ok(cur)
    }

    /// Resolves the parent directory of `path`, returning `(dir, name)`.
    pub fn resolve_parent<'p>(&self, path: &'p str) -> FsResult<(Arc<MemInode>, &'p str)> {
        let (parents, name) = fsapi::path::split_parent(path)?;
        let mut cur = self.root();
        for c in parents {
            if cur.ftype != FileType::Directory {
                return Err(Errno::ENOTDIR);
            }
            let next = cur.children.lock().get(c).cloned().ok_or(Errno::ENOENT)?;
            cur = next;
        }
        if cur.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR);
        }
        Ok((cur, name))
    }

    /// Creates a file or directory under `dir`. Fails with `EEXIST` when
    /// the name is taken.
    pub fn create_in(
        &self,
        dir: &Arc<MemInode>,
        name: &str,
        ftype: FileType,
        mode: u16,
    ) -> FsResult<Arc<MemInode>> {
        fsapi::path::validate_name(name)?;
        let mut ch = dir.children.lock();
        if ch.contains_key(name) {
            return Err(Errno::EEXIST);
        }
        let ino = MemInode::new(self.alloc_ino(), ftype, mode);
        ch.insert(name.to_string(), Arc::clone(&ino));
        Ok(ino)
    }

    /// Looks up `name` in `dir`.
    pub fn lookup_in(&self, dir: &Arc<MemInode>, name: &str) -> FsResult<Arc<MemInode>> {
        dir.children.lock().get(name).cloned().ok_or(Errno::ENOENT)
    }

    /// Unlinks a non-directory entry; the inode stays alive while open
    /// descriptors reference it (Arc reachability = orphan semantics).
    pub fn unlink_in(&self, dir: &Arc<MemInode>, name: &str) -> FsResult<Arc<MemInode>> {
        let mut ch = dir.children.lock();
        match ch.get(name) {
            None => Err(Errno::ENOENT),
            Some(i) if i.ftype == FileType::Directory => Err(Errno::EISDIR),
            Some(_) => {
                let ino = ch.remove(name).expect("checked present");
                ino.nlink.fetch_sub(1, Ordering::SeqCst);
                Ok(ino)
            }
        }
    }

    /// Removes an empty directory.
    pub fn rmdir_in(&self, dir: &Arc<MemInode>, name: &str) -> FsResult<()> {
        let mut ch = dir.children.lock();
        match ch.get(name) {
            None => Err(Errno::ENOENT),
            Some(i) if i.ftype != FileType::Directory => Err(Errno::ENOTDIR),
            Some(i) => {
                if !i.children.lock().is_empty() {
                    return Err(Errno::ENOTEMPTY);
                }
                let ino = ch.remove(name).expect("checked present");
                ino.nlink.fetch_sub(1, Ordering::SeqCst);
                Ok(())
            }
        }
    }

    /// Renames `old_dir/old_name` to `new_dir/new_name`, replacing a
    /// non-directory target. Directory locks are taken in inode order to
    /// avoid ABBA deadlock, as Linux does.
    pub fn rename(
        &self,
        old_dir: &Arc<MemInode>,
        old_name: &str,
        new_dir: &Arc<MemInode>,
        new_name: &str,
    ) -> FsResult<()> {
        fsapi::path::validate_name(new_name)?;
        if Arc::ptr_eq(old_dir, new_dir) {
            let mut ch = old_dir.children.lock();
            let moving = ch.get(old_name).cloned().ok_or(Errno::ENOENT)?;
            if let Some(existing) = ch.get(new_name) {
                if existing.ftype == FileType::Directory {
                    return Err(Errno::EISDIR);
                }
                existing.nlink.fetch_sub(1, Ordering::SeqCst);
            }
            ch.remove(old_name);
            ch.insert(new_name.to_string(), moving);
            return Ok(());
        }
        let (first, second) = if old_dir.ino < new_dir.ino {
            (old_dir, new_dir)
        } else {
            (new_dir, old_dir)
        };
        let mut g1 = first.children.lock();
        let mut g2 = second.children.lock();
        let (old_ch, new_ch) = if old_dir.ino < new_dir.ino {
            (&mut *g1, &mut *g2)
        } else {
            (&mut *g2, &mut *g1)
        };
        let moving = old_ch.get(old_name).cloned().ok_or(Errno::ENOENT)?;
        if let Some(existing) = new_ch.get(new_name) {
            if existing.ftype == FileType::Directory {
                return Err(Errno::EISDIR);
            }
            existing.nlink.fetch_sub(1, Ordering::SeqCst);
        }
        old_ch.remove(old_name);
        new_ch.insert(new_name.to_string(), moving);
        Ok(())
    }

    /// Lists a directory; returns entries plus the count (for accounting).
    pub fn readdir(&self, dir: &Arc<MemInode>) -> FsResult<Vec<DirEntry>> {
        if dir.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR);
        }
        Ok(dir
            .children
            .lock()
            .iter()
            .map(|(name, i)| DirEntry {
                name: name.clone(),
                ino: i.ino,
                server: 0,
                ftype: i.ftype,
            })
            .collect())
    }
}

/// Positional read; returns bytes read.
pub fn read_at(ino: &MemInode, offset: u64, buf: &mut [u8]) -> usize {
    let data = ino.data.read();
    if offset as usize >= data.len() {
        return 0;
    }
    let n = buf.len().min(data.len() - offset as usize);
    buf[..n].copy_from_slice(&data[offset as usize..offset as usize + n]);
    n
}

/// Positional write; extends the file (zero-filling gaps); returns bytes
/// written.
pub fn write_at(ino: &MemInode, offset: u64, src: &[u8]) -> usize {
    let mut data = ino.data.write();
    let end = offset as usize + src.len();
    if data.len() < end {
        data.resize(end, 0);
    }
    data[offset as usize..end].copy_from_slice(src);
    src.len()
}

/// Truncates or zero-extends the file.
pub fn truncate(ino: &MemInode, len: u64) {
    ino.data.write().resize(len as usize, 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_resolve_io() {
        let fs = MemFs::new();
        let (root, name) = fs.resolve_parent("/f").unwrap();
        let f = fs.create_in(&root, name, FileType::Regular, 0o644).unwrap();
        write_at(&f, 0, b"hello");
        let got = fs.resolve("/f", None).unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(read_at(&got, 0, &mut buf), 5);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn orphan_data_survives_unlink() {
        let fs = MemFs::new();
        let root = fs.root();
        let f = fs.create_in(&root, "x", FileType::Regular, 0o644).unwrap();
        write_at(&f, 0, b"keep");
        let held = Arc::clone(&f); // an "open descriptor"
        fs.unlink_in(&root, "x").unwrap();
        assert!(fs.resolve("/x", None).is_err());
        let mut buf = [0u8; 4];
        assert_eq!(read_at(&held, 0, &mut buf), 4);
        assert_eq!(&buf, b"keep");
    }

    #[test]
    fn rename_replaces_files_not_dirs() {
        let fs = MemFs::new();
        let root = fs.root();
        fs.create_in(&root, "a", FileType::Regular, 0o644).unwrap();
        fs.create_in(&root, "b", FileType::Regular, 0o644).unwrap();
        fs.rename(&root, "a", &root, "b").unwrap();
        assert!(fs.resolve("/a", None).is_err());
        assert!(fs.resolve("/b", None).is_ok());
        fs.create_in(&root, "d", FileType::Directory, 0o755)
            .unwrap();
        assert!(matches!(
            fs.rename(&root, "b", &root, "d"),
            Err(Errno::EISDIR)
        ));
    }

    #[test]
    fn rename_across_directories() {
        let fs = MemFs::new();
        let root = fs.root();
        let d1 = fs
            .create_in(&root, "d1", FileType::Directory, 0o755)
            .unwrap();
        let d2 = fs
            .create_in(&root, "d2", FileType::Directory, 0o755)
            .unwrap();
        let f = fs.create_in(&d1, "f", FileType::Regular, 0o644).unwrap();
        write_at(&f, 0, b"m");
        fs.rename(&d1, "f", &d2, "f2").unwrap();
        assert!(fs.resolve("/d1/f", None).is_err());
        assert_eq!(fs.resolve("/d2/f2", None).unwrap().size(), 1);
        // And the reverse direction (lock ordering branch).
        fs.rename(&d2, "f2", &d1, "f").unwrap();
        assert!(fs.resolve("/d1/f", None).is_ok());
    }

    #[test]
    fn rmdir_requires_empty() {
        let fs = MemFs::new();
        let root = fs.root();
        let d = fs
            .create_in(&root, "d", FileType::Directory, 0o755)
            .unwrap();
        fs.create_in(&d, "f", FileType::Regular, 0o644).unwrap();
        assert!(matches!(fs.rmdir_in(&root, "d"), Err(Errno::ENOTEMPTY)));
        fs.unlink_in(&d, "f").unwrap();
        fs.rmdir_in(&root, "d").unwrap();
        assert!(fs.resolve("/d", None).is_err());
    }

    #[test]
    fn sparse_write_zero_fills() {
        let fs = MemFs::new();
        let root = fs.root();
        let f = fs.create_in(&root, "s", FileType::Regular, 0o644).unwrap();
        write_at(&f, 100, b"x");
        assert_eq!(f.size(), 101);
        let mut buf = [9u8; 100];
        read_at(&f, 0, &mut buf);
        assert_eq!(buf, [0u8; 100]);
    }

    #[test]
    fn unlink_dir_rejected() {
        let fs = MemFs::new();
        let root = fs.root();
        fs.create_in(&root, "d", FileType::Directory, 0o755)
            .unwrap();
        assert!(matches!(fs.unlink_in(&root, "d"), Err(Errno::EISDIR)));
    }
}
