//! The baseline host: process model and virtual-time accounting shared by
//! the ramfs and UNFS3 comparison systems.
//!
//! Both baselines run the same coherent [`crate::memfs::MemFs`]; they
//! differ in *where operations pay their costs*:
//!
//! * **ramfs** (Linux tmpfs stand-in): VFS syscall + dcache walk on the
//!   caller's core; namespace mutations serialize on the directory's
//!   virtual lock (the CC-SMP bottleneck of paper §2.1); data copies are
//!   cheap coherent-cache copies. Descriptor offsets are shared across
//!   fork through shared memory — trivially, which is the paper's point
//!   about what cache coherence buys.
//! * **unfs** (UNFS3 user-space NFS over loopback): every operation pays a
//!   loopback RPC and serializes at the single NFS daemon
//!   ([`vtime::ResourceClock`]); file data crosses the socket. Descriptors
//!   are *not* shared across processes (NFS has no mechanism, paper §2.2):
//!   children get independent offset copies.

use crate::memfs::{self, MemFs, MemInode};
use crate::pipes::PipeBuf;
use fsapi::{
    DirEntry, Errno, Fd, FileType, FsResult, MkdirOpts, Mode, OpenFlags, ProcHandle, ProcJoin,
    ProcMain, Stat, System, Whence,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::AtomicUsize;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Weak};
use vtime::{Clocks, CostModel, ResourceClock};

/// Block size used for data-cost accounting (4 KiB pages).
const BLOCK_SIZE: usize = 4096;

/// Which baseline this host models.
pub enum Flavor {
    /// Linux ramfs/tmpfs on coherent shared memory.
    Ramfs,
    /// UNFS3: one user-space NFS daemon reached over loopback.
    Unfs {
        /// The single-threaded daemon's serialization point.
        server: ResourceClock,
    },
}

/// A baseline machine.
pub struct HostSystem {
    fs: MemFs,
    /// Per-core busy counters.
    clocks: Clocks,
    /// Latest process timeline observed.
    timeline: std::sync::atomic::AtomicU64,
    cost: CostModel,
    flavor: Flavor,
    app_cores: Vec<usize>,
    self_ref: Weak<HostSystem>,
    proc_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Cycles for a Linux `fork` + `exec` (faster than Hare's scheduling-server
/// path; the paper credits Linux's scheduler in §5.3.3).
const LINUX_SPAWN_COST: u64 = 80_000;

impl HostSystem {
    /// Boots a baseline machine with `ncores` cores, all usable by
    /// applications.
    pub fn start(ncores: usize, flavor: Flavor) -> Arc<HostSystem> {
        // The NFS daemon gets a dedicated core (the paper's Figure 8 setup
        // runs the server on one core and the application on another).
        let app_cores: Vec<usize> = if matches!(flavor, Flavor::Unfs { .. }) && ncores > 1 {
            (1..ncores).collect()
        } else {
            (0..ncores).collect()
        };
        Arc::new_cyclic(|weak| HostSystem {
            fs: MemFs::new(),
            clocks: Clocks::new(ncores),
            timeline: std::sync::atomic::AtomicU64::new(0),
            cost: CostModel::default(),
            flavor,
            app_cores,
            self_ref: weak.clone(),
            proc_threads: Mutex::new(Vec::new()),
        })
    }

    /// The Linux ramfs/tmpfs baseline.
    pub fn ramfs(ncores: usize) -> Arc<HostSystem> {
        Self::start(ncores, Flavor::Ramfs)
    }

    /// The UNFS3 baseline: the daemon occupies one core conceptually; the
    /// paper's Figure 8 setup gives it a dedicated core and runs the
    /// application on another.
    pub fn unfs(ncores: usize) -> Arc<HostSystem> {
        Self::start(
            ncores,
            Flavor::Unfs {
                server: ResourceClock::new(),
            },
        )
    }

    /// Joins finished process threads (housekeeping).
    pub fn shutdown(&self) {
        let mut ts = self.proc_threads.lock();
        for t in ts.drain(..) {
            let _ = t.join();
        }
    }

    // ----- Cost accounting --------------------------------------------------

    /// Publishes a process timeline value.
    fn note(&self, t: u64) {
        self.timeline.fetch_max(t, Ordering::SeqCst);
    }

    /// Executes `cycles` of CPU work on `proc`: busy on its core, forward
    /// on its timeline.
    fn work(&self, p: &HostProc, cycles: u64) -> u64 {
        self.clocks.advance(p.core, cycles);
        let t = p.now.fetch_add(cycles, Ordering::SeqCst) + cycles;
        self.note(t);
        t
    }

    /// Waits (no CPU) until `t` on `proc`'s timeline.
    fn wait(&self, p: &HostProc, t: u64) {
        let now = p.now.fetch_max(t, Ordering::SeqCst).max(t);
        self.note(now);
    }

    /// Charges a metadata operation: `walk` path components resolved, an
    /// optional mutated directory (whose lock serializes), and `entries`
    /// result items.
    fn charge_meta(&self, p: &HostProc, walk: usize, mutated: Option<&MemInode>, entries: usize) {
        match &self.flavor {
            Flavor::Ramfs => {
                let mut c = self.cost.ramfs_syscall + self.cost.ramfs_op;
                c += 120 * walk as u64; // dcache hits
                c += 30 * entries as u64;
                let t = self.work(p, c);
                if let Some(dir) = mutated {
                    // The per-directory lock: concurrent mutators of one
                    // directory serialize here (paper §2.1). The hold time
                    // is executed work; the queueing delay is waiting.
                    let hold = self.cost.ramfs_dirlock_hold + self.cost.ramfs_contention;
                    let release = dir.dir_clock.serve(t, hold);
                    self.clocks.advance(p.core, hold);
                    self.wait(p, release);
                }
            }
            Flavor::Unfs { server } => {
                // Client-side loopback send (kernel network stack is CPU
                // work), then the single daemon serializes the operation.
                let t = self.work(p, self.cost.ramfs_syscall + self.cost.unfs_rpc / 2);
                let service = self.cost.unfs_op + 150 * walk as u64 + 40 * entries as u64;
                let release = server.serve(t, service);
                if self.app_cores.first() != Some(&0) {
                    self.clocks.advance(0, service); // daemon core
                }
                self.wait(p, release);
                self.work(p, self.cost.unfs_rpc / 2);
            }
        }
    }

    /// Charges a data operation of `bytes` bytes.
    fn charge_io(&self, p: &HostProc, ino: &MemInode, bytes: usize, write: bool) {
        let blocks = bytes.div_ceil(BLOCK_SIZE).max(1) as u64;
        match &self.flavor {
            Flavor::Ramfs => {
                let c = self.cost.ramfs_syscall + blocks * self.cost.ramfs_data_blk;
                let t = self.work(p, c);
                if write {
                    // Exclusive inode lock for writes (Linux i_rwsem).
                    let hold = blocks * 80;
                    let release = ino.file_clock.serve(t, hold);
                    self.clocks.advance(p.core, hold);
                    self.wait(p, release);
                }
            }
            Flavor::Unfs { server } => {
                let t = self.work(p, self.cost.ramfs_syscall + self.cost.unfs_rpc / 2);
                let service = self.cost.unfs_op + blocks * self.cost.unfs_data_blk;
                let release = server.serve(t, service);
                if self.app_cores.first() != Some(&0) {
                    self.clocks.advance(0, service); // daemon core
                }
                self.wait(p, release);
                self.work(p, self.cost.unfs_rpc / 2);
            }
        }
    }

    /// True when descriptors stay shared across spawn (coherent shared
    /// memory). NFS clients have no mechanism for this (paper §2.2).
    fn shares_fds(&self) -> bool {
        matches!(self.flavor, Flavor::Ramfs)
    }
}

impl System for HostSystem {
    type Proc = HostProc;

    fn start_proc(&self) -> HostProc {
        let sys = self.self_ref.upgrade().expect("system alive");
        HostProc {
            core: self.app_cores[0],
            sys,
            now: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            fds: Mutex::new(HashMap::new()),
            next_fd: AtomicU32::new(0),
            rr: Arc::new(AtomicUsize::new(0)),
        }
    }

    fn elapsed_cycles(&self) -> u64 {
        let mut t = self
            .clocks
            .max_time()
            .max(self.timeline.load(Ordering::SeqCst));
        if let Flavor::Unfs { server } = &self.flavor {
            t = t.max(server.now());
        }
        t
    }

    fn ncores(&self) -> usize {
        self.app_cores.len()
    }

    fn sync_cores(&self) {
        let t = self.elapsed_cycles();
        for core in 0..self.clocks.ncores() {
            self.clocks.observe(core, t);
        }
        self.timeline.fetch_max(t, Ordering::SeqCst);
    }
}

/// One file descriptor of a baseline process.
#[derive(Clone)]
enum HostFd {
    File {
        ino: Arc<MemInode>,
        flags: OpenFlags,
        /// Shared across fork on ramfs; copied on unfs.
        offset: Arc<Mutex<u64>>,
    },
    Pipe {
        pipe: Arc<PipeBuf>,
        writer: bool,
    },
}

/// One baseline process (a thread bound to a virtual core).
pub struct HostProc {
    core: usize,
    sys: Arc<HostSystem>,
    /// This process's logical timeline (shared with its join handles).
    now: Arc<std::sync::atomic::AtomicU64>,
    fds: Mutex<HashMap<u32, HostFd>>,
    next_fd: AtomicU32,
    /// Round-robin spawn cursor (Linux load balancing stand-in).
    rr: Arc<AtomicUsize>,
}

impl HostProc {
    fn insert_fd(&self, fd: HostFd) -> Fd {
        let n = self.next_fd.fetch_add(1, Ordering::SeqCst);
        self.fds.lock().insert(n, fd);
        Fd(n)
    }

    fn get_fd(&self, fd: Fd) -> FsResult<HostFd> {
        self.fds.lock().get(&fd.0).cloned().ok_or(Errno::EBADF)
    }
}

impl fsapi::ProcFs for HostProc {
    fn open(&self, path: &str, flags: OpenFlags, mode: Mode) -> FsResult<Fd> {
        let mut walk = 0usize;
        let (dir, name) = self.sys.fs.resolve_parent(path)?;
        let ino = match self.sys.fs.lookup_in(&dir, name) {
            Ok(i) => {
                if flags.contains(OpenFlags::CREAT) && flags.contains(OpenFlags::EXCL) {
                    self.sys.charge_meta(self, 1, None, 0);
                    return Err(Errno::EEXIST);
                }
                if i.ftype == FileType::Directory {
                    return Err(Errno::EISDIR);
                }
                self.sys.charge_meta(self, 1 + walk, None, 0);
                i
            }
            Err(Errno::ENOENT) if flags.contains(OpenFlags::CREAT) => {
                walk += 1;
                let i = self
                    .sys
                    .fs
                    .create_in(&dir, name, FileType::Regular, mode.0)?;
                self.sys.charge_meta(self, walk, Some(&dir), 0);
                i
            }
            Err(e) => {
                self.sys.charge_meta(self, walk, None, 0);
                return Err(e);
            }
        };
        if flags.contains(OpenFlags::TRUNC) && flags.writable() {
            memfs::truncate(&ino, 0);
        }
        Ok(self.insert_fd(HostFd::File {
            ino,
            flags,
            offset: Arc::new(Mutex::new(0)),
        }))
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        let entry = self.fds.lock().remove(&fd.0).ok_or(Errno::EBADF)?;
        if let HostFd::Pipe { pipe, writer } = &entry {
            pipe.drop_ref(*writer);
        }
        self.sys.work(self, self.sys.cost.ramfs_syscall);
        Ok(())
    }

    fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        match self.get_fd(fd)? {
            HostFd::File { ino, flags, offset } => {
                if !flags.readable() {
                    return Err(Errno::EBADF);
                }
                let mut off = offset.lock();
                let n = memfs::read_at(&ino, *off, buf);
                *off += n as u64;
                drop(off);
                self.sys.charge_io(self, &ino, n, false);
                Ok(n)
            }
            HostFd::Pipe { pipe, writer } => {
                if writer {
                    return Err(Errno::EBADF);
                }
                let n = pipe.read(buf);
                self.sys
                    .work(self, self.sys.cost.ramfs_syscall + n as u64 / 16);
                Ok(n)
            }
        }
    }

    fn write(&self, fd: Fd, buf: &[u8]) -> FsResult<usize> {
        match self.get_fd(fd)? {
            HostFd::File { ino, flags, offset } => {
                if !flags.writable() {
                    return Err(Errno::EBADF);
                }
                let mut off = offset.lock();
                let start = if flags.contains(OpenFlags::APPEND) {
                    ino.size()
                } else {
                    *off
                };
                let n = memfs::write_at(&ino, start, buf);
                *off = start + n as u64;
                drop(off);
                self.sys.charge_io(self, &ino, n, true);
                Ok(n)
            }
            HostFd::Pipe { pipe, writer } => {
                if !writer {
                    return Err(Errno::EBADF);
                }
                let n = pipe.write(buf)?;
                self.sys
                    .work(self, self.sys.cost.ramfs_syscall + n as u64 / 16);
                Ok(n)
            }
        }
    }

    fn lseek(&self, fd: Fd, off: i64, whence: Whence) -> FsResult<u64> {
        match self.get_fd(fd)? {
            HostFd::File { ino, offset, .. } => {
                let mut cur = offset.lock();
                let new = fsapi::flags::apply_seek(*cur, ino.size(), off, whence)?;
                *cur = new;
                self.sys.work(self, self.sys.cost.ramfs_syscall);
                Ok(new)
            }
            HostFd::Pipe { .. } => Err(Errno::ESPIPE),
        }
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        match self.get_fd(fd)? {
            HostFd::File { .. } => {
                self.sys.work(self, self.sys.cost.ramfs_syscall);
                Ok(())
            }
            HostFd::Pipe { .. } => Err(Errno::EINVAL),
        }
    }

    fn ftruncate(&self, fd: Fd, len: u64) -> FsResult<()> {
        match self.get_fd(fd)? {
            HostFd::File { ino, flags, .. } => {
                if !flags.writable() {
                    return Err(Errno::EINVAL);
                }
                memfs::truncate(&ino, len);
                self.sys.charge_io(self, &ino, 0, true);
                Ok(())
            }
            HostFd::Pipe { .. } => Err(Errno::EINVAL),
        }
    }

    fn dup(&self, fd: Fd) -> FsResult<Fd> {
        let entry = self.get_fd(fd)?;
        if let HostFd::Pipe { pipe, writer } = &entry {
            pipe.add_ref(*writer);
        }
        self.sys.work(self, self.sys.cost.ramfs_syscall);
        Ok(self.insert_fd(entry))
    }

    fn pipe(&self) -> FsResult<(Fd, Fd)> {
        let p = PipeBuf::new();
        self.sys.work(self, self.sys.cost.ramfs_syscall * 2);
        let r = self.insert_fd(HostFd::Pipe {
            pipe: Arc::clone(&p),
            writer: false,
        });
        let w = self.insert_fd(HostFd::Pipe {
            pipe: p,
            writer: true,
        });
        Ok((r, w))
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        let (dir, name) = self.sys.fs.resolve_parent(path)?;
        let r = self.sys.fs.unlink_in(&dir, name).map(|_| ());
        self.sys.charge_meta(self, 1, Some(&dir), 0);
        r
    }

    fn mkdir_opts(&self, path: &str, mode: Mode, _opts: MkdirOpts) -> FsResult<()> {
        let (dir, name) = self.sys.fs.resolve_parent(path)?;
        let r = self
            .sys
            .fs
            .create_in(&dir, name, FileType::Directory, mode.0)
            .map(|_| ());
        self.sys.charge_meta(self, 1, Some(&dir), 0);
        r
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        let (dir, name) = self.sys.fs.resolve_parent(path)?;
        let r = self.sys.fs.rmdir_in(&dir, name);
        self.sys.charge_meta(self, 1, Some(&dir), 0);
        r
    }

    fn rename(&self, old: &str, new: &str) -> FsResult<()> {
        if fsapi::path::normalize(old)? == fsapi::path::normalize(new)? {
            return Ok(());
        }
        let (od, on) = self.sys.fs.resolve_parent(old)?;
        let (nd, nn) = self.sys.fs.resolve_parent(new)?;
        let r = self.sys.fs.rename(&od, on, &nd, nn);
        self.sys.charge_meta(self, 2, Some(&od), 0);
        if !Arc::ptr_eq(&od, &nd) {
            self.sys.charge_meta(self, 0, Some(&nd), 0);
        }
        r
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let mut walk = 0usize;
        let dir = self.sys.fs.resolve(path, Some(&mut walk))?;
        let entries = self.sys.fs.readdir(&dir)?;
        self.sys.charge_meta(self, walk, None, entries.len());
        Ok(entries)
    }

    fn stat(&self, path: &str) -> FsResult<Stat> {
        let mut walk = 0usize;
        let ino = self.sys.fs.resolve(path, Some(&mut walk))?;
        self.sys.charge_meta(self, walk, None, 0);
        Ok(ino.stat())
    }

    fn fstat(&self, fd: Fd) -> FsResult<Stat> {
        match self.get_fd(fd)? {
            HostFd::File { ino, .. } => {
                self.sys.work(self, self.sys.cost.ramfs_syscall);
                Ok(ino.stat())
            }
            HostFd::Pipe { .. } => Ok(Stat {
                ino: 0,
                server: 0,
                ftype: FileType::Pipe,
                size: 0,
                nlink: 1,
                mode: 0o600,
                blocks: 0,
            }),
        }
    }
}

impl ProcHandle for HostProc {
    fn spawn(&self, main: ProcMain<Self>) -> FsResult<ProcJoin> {
        let sys = Arc::clone(&self.sys);
        let slot = self.rr.fetch_add(1, Ordering::SeqCst);
        let target = sys.app_cores[slot % sys.app_cores.len()];
        // fork + exec on Linux.
        let t_parent = sys.work(self, LINUX_SPAWN_COST);

        // Child descriptor table: shared offsets on coherent Linux, copied
        // offsets on NFS.
        let share = sys.shares_fds();
        let child_fds: HashMap<u32, HostFd> = self
            .fds
            .lock()
            .iter()
            .map(|(n, f)| {
                let f2 = match f {
                    HostFd::File { ino, flags, offset } => HostFd::File {
                        ino: Arc::clone(ino),
                        flags: *flags,
                        offset: if share {
                            Arc::clone(offset)
                        } else {
                            Arc::new(Mutex::new(*offset.lock()))
                        },
                    },
                    HostFd::Pipe { pipe, writer } => {
                        pipe.add_ref(*writer);
                        HostFd::Pipe {
                            pipe: Arc::clone(pipe),
                            writer: *writer,
                        }
                    }
                };
                (*n, f2)
            })
            .collect();
        let next_fd = self.next_fd.load(Ordering::SeqCst);
        let child_rr = Arc::clone(&self.rr);

        let (exit_tx, exit_rx) = msg::channel::<i32>(msg::MsgStats::shared());
        let sys2 = Arc::clone(&sys);
        let handle = std::thread::Builder::new()
            .name(format!("host-proc-c{target}"))
            .spawn(move || {
                let child = HostProc {
                    core: target,
                    sys: Arc::clone(&sys2),
                    now: Arc::new(std::sync::atomic::AtomicU64::new(t_parent)),
                    fds: Mutex::new(child_fds),
                    next_fd: AtomicU32::new(next_fd),
                    rr: child_rr,
                };
                let status = main(&child);
                // Close inherited descriptors (drop pipe refs).
                let fds: Vec<u32> = child.fds.lock().keys().copied().collect();
                for n in fds {
                    let _ = fsapi::ProcFs::close(&child, Fd(n));
                }
                let t = child.now.load(Ordering::SeqCst);
                let _ = exit_tx.send(status, t, target);
            })
            .map_err(|_| Errno::EAGAIN)?;
        sys.proc_threads.lock().push(handle);

        let sys3 = Arc::clone(&sys);
        let parent_now = Arc::clone(&self.now);
        Ok(ProcJoin::new(move || match exit_rx.recv() {
            Ok(env) => {
                // waitpid: the parent's timeline advances to the child's
                // exit time.
                parent_now.fetch_max(env.deliver_at, Ordering::SeqCst);
                sys3.note(env.deliver_at);
                env.payload
            }
            Err(_) => -1,
        }))
    }

    fn core(&self) -> usize {
        self.core
    }

    fn compute(&self, cycles: u64) {
        self.sys.work(self, cycles);
    }
}
