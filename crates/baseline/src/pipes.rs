//! Coherent local pipes for the baseline systems.
//!
//! On the Linux baselines pipes are ordinary kernel pipes in coherent
//! shared memory (blocking via condition variables). Note that on the NFS
//! baseline pipes are *local to the client host* — which is exactly why
//! NFS cannot run make's jobserver across machines (paper §1/§2.2); our
//! UNFS3 configuration is single-host, matching the paper's Figure 8 setup.

use fsapi::Errno;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// Default pipe capacity (Linux: 64 KiB).
pub const PIPE_CAPACITY: usize = 64 * 1024;

struct PipeState {
    buf: VecDeque<u8>,
    readers: u32,
    writers: u32,
}

/// A blocking byte pipe.
pub struct PipeBuf {
    state: Mutex<PipeState>,
    cv: Condvar,
    capacity: usize,
}

impl PipeBuf {
    /// A fresh pipe with one reader and one writer reference.
    pub fn new() -> Arc<PipeBuf> {
        Arc::new(PipeBuf {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                readers: 1,
                writers: 1,
            }),
            cv: Condvar::new(),
            capacity: PIPE_CAPACITY,
        })
    }

    /// Blocking read; returns 0 at EOF (all writers closed, buffer empty).
    pub fn read(&self, buf: &mut [u8]) -> usize {
        let mut st = self.state.lock();
        loop {
            if !st.buf.is_empty() {
                let n = buf.len().min(st.buf.len());
                for (i, b) in st.buf.drain(..n).enumerate() {
                    buf[i] = b;
                }
                self.cv.notify_all();
                return n;
            }
            if st.writers == 0 || buf.is_empty() {
                return 0;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Blocking write; partial writes allowed; `EPIPE` with no readers.
    pub fn write(&self, data: &[u8]) -> Result<usize, Errno> {
        let mut st = self.state.lock();
        loop {
            if st.readers == 0 {
                return Err(Errno::EPIPE);
            }
            if data.is_empty() {
                return Ok(0);
            }
            let space = self.capacity - st.buf.len();
            if space > 0 {
                let n = data.len().min(space);
                st.buf.extend(&data[..n]);
                self.cv.notify_all();
                return Ok(n);
            }
            self.cv.wait(&mut st);
        }
    }

    /// Adds a reference to one end.
    pub fn add_ref(&self, writer: bool) {
        let mut st = self.state.lock();
        if writer {
            st.writers += 1;
        } else {
            st.readers += 1;
        }
    }

    /// Drops a reference to one end, waking blocked peers.
    pub fn drop_ref(&self, writer: bool) {
        let mut st = self.state.lock();
        if writer {
            st.writers -= 1;
        } else {
            st.readers -= 1;
        }
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let p = PipeBuf::new();
        assert_eq!(p.write(b"abc").unwrap(), 3);
        let mut buf = [0u8; 2];
        assert_eq!(p.read(&mut buf), 2);
        assert_eq!(&buf, b"ab");
    }

    #[test]
    fn eof_after_writer_close() {
        let p = PipeBuf::new();
        p.write(b"z").unwrap();
        p.drop_ref(true);
        let mut buf = [0u8; 4];
        assert_eq!(p.read(&mut buf), 1);
        assert_eq!(p.read(&mut buf), 0, "EOF");
    }

    #[test]
    fn epipe_without_readers() {
        let p = PipeBuf::new();
        p.drop_ref(false);
        assert_eq!(p.write(b"x"), Err(Errno::EPIPE));
    }

    #[test]
    fn blocking_read_woken_by_cross_thread_write() {
        let p = PipeBuf::new();
        let p2 = Arc::clone(&p);
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 4];
            p2.read(&mut buf)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        p.write(b"go").unwrap();
        assert_eq!(t.join().unwrap(), 2);
    }
}
