//! # hare-baseline — the paper's comparison systems
//!
//! The Hare evaluation (paper §5.3.3, Figures 8 and 15) compares against
//! two systems, both reproduced here on the common [`fsapi`] interface so
//! the same workload binaries run on all three:
//!
//! * **Linux ramfs/tmpfs** ([`HostSystem::ramfs`]): a coherent
//!   shared-memory in-memory file system. It is both the fast single-core
//!   baseline of Figure 8 (Hare reaches a median 0.39× of its throughput)
//!   and the CC-SMP scalability comparator of Figure 15, complete with the
//!   per-directory lock serialization that limits its scaling on
//!   create-heavy workloads.
//! * **UNFS3** ([`HostSystem::unfs`]): a user-space NFS server reached
//!   over loopback — "a naïve alternative to Hare, to check whether Hare's
//!   sophisticated design is necessary". Every operation pays a loopback
//!   RPC and serializes at the single daemon; descriptors cannot be shared
//!   across processes (paper §2.2).

pub mod host;
pub mod memfs;
pub mod pipes;

pub use host::{Flavor, HostProc, HostSystem};
pub use memfs::MemFs;
pub use pipes::PipeBuf;
