#!/usr/bin/env bash
# The perf-smoke regression gate, shared by the CI workflow and local
# runs (`./ci/perf_gate.sh` from anywhere inside the repo).
#
# The bench list is not maintained by hand: every committed
# `BENCH_<bench>.json` baseline implies a gate run of the bench binary
# with the same name. Committing a baseline is therefore all it takes to
# get a bench gated — and a baseline whose binary has vanished (renamed
# bench, dropped bin target) fails the gate instead of silently
# un-gating, the same no-silent-drop policy the in-process gate applies
# to individual configs and metrics.
#
# Each bench rewrites its BENCH_*.json in place, so the committed copies
# are saved aside first and passed via HARE_GATE_BASELINE. Knobs:
#
#   HARE_SCALE    workload preset (default quick — the CI smoke size)
#   HARE_CORES    simulated core budget (default 8)
#   HARE_BIN_DIR  where the bench binaries live (default target/release)
#
# With --explain, a failing gate reruns one traced round (op tracing on)
# and dumps the span trees to trace_artifacts/TRACE_<bench>.json plus the
# costliest op's rendered tree to the step summary — see docs/tracing.md.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--explain" ]; then
    export HARE_EXPLAIN_DIR="$PWD/trace_artifacts"
    shift
fi

scale="${HARE_SCALE:-quick}"
cores="${HARE_CORES:-8}"
bindir="${HARE_BIN_DIR:-target/release}"

baselines=(BENCH_*.json)
if [ ! -e "${baselines[0]}" ]; then
    echo "perf_gate: no committed BENCH_*.json baselines found" >&2
    exit 1
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

failed=0
for f in "${baselines[@]}"; do
    bench="${f#BENCH_}"
    bench="${bench%.json}"
    if [ ! -x "$bindir/$bench" ]; then
        echo "perf_gate: committed baseline $f has no gate run:" \
             "$bindir/$bench is not a built bench binary" >&2
        failed=1
        continue
    fi
    # Gate against the committed copy, not the file the run rewrites.
    cp "$f" "$tmp/$f"
    echo "== perf_gate: $bench (scale=$scale cores=$cores) =="
    HARE_SCALE="$scale" HARE_CORES="$cores" \
        HARE_GATE_BASELINE="$tmp/$f" "$bindir/$bench"
done

exit "$failed"
