//! # hare — reproduction of *Hare: a file system for non-cache-coherent
//! multicores* (EuroSys 2015)
//!
//! This facade crate re-exports the whole reproduction:
//!
//! * [`hare_core`] — the Hare file system: sharded file servers, the
//!   client library, the close-to-open invalidate/write-back protocol over
//!   a simulated non-coherent memory, the three-phase distributed `rmdir`,
//!   hybrid shared file descriptors, and server-side pipes.
//! * [`hare_sched`] — scheduling servers, the remote execution
//!   protocol with proxy processes and signal relay, and the
//!   [`fsapi::System`] implementation ([`HareSystem`]).
//! * [`hare_baseline`] — the paper's comparison systems: Linux
//!   ramfs/tmpfs and the UNFS3 user-space NFS server.
//! * [`hare_workloads`] — the 13 evaluation benchmarks.
//! * [`nccmem`], [`vtime`], [`msg`] — the simulated hardware substrates:
//!   non-coherent shared memory, per-core virtual clocks, atomic-delivery
//!   message passing.
//!
//! ## Quickstart
//!
//! ```
//! use fsapi::{ProcFs, System, write_file, read_to_vec};
//! use hare::{HareConfig, HareSystem};
//!
//! // A 4-core machine in the paper's timeshare configuration.
//! let sys = HareSystem::start(HareConfig::timeshare(4));
//! let proc0 = sys.start_proc();
//! write_file(&proc0, "/hello", b"non-coherent world").unwrap();
//! assert_eq!(read_to_vec(&proc0, "/hello").unwrap(), b"non-coherent world");
//! drop(proc0);
//! sys.shutdown();
//! ```

pub use fsapi;
pub use hare_baseline as baseline;
pub use hare_core as core;
pub use hare_sched as sched;
pub use hare_workloads as workloads;
pub use msg;
pub use nccmem;
pub use vtime;

pub use hare_baseline::HostSystem;
pub use hare_core::{HareConfig, HareInstance, Placement, Techniques};
pub use hare_sched::{HareProc, HareSystem};
pub use hare_workloads::{Scale, Workload};
