//! Cross-system integration test: every paper workload runs to completion
//! on every system (Hare, Linux ramfs, UNFS3) and produces sensible
//! operation counts and virtual runtimes.

use fsapi::System;
use hare::{baseline::HostSystem, HareConfig, HareSystem, Scale, Workload};
use hare_workloads as workloads;

fn check<S: System>(sys: &S, wl: Workload, nprocs: usize) -> workloads::WorkloadResult {
    let s = Scale::quick();
    let r = workloads::run(sys, wl, nprocs, &s).unwrap_or_else(|e| {
        panic!("workload {wl} failed: {e}");
    });
    assert!(r.ops > 0, "{wl}: no operations recorded");
    assert!(r.cycles > 0, "{wl}: no virtual time consumed");
    assert!(r.stats.total() > 0, "{wl}: no syscalls recorded");
    r
}

#[test]
fn all_workloads_on_hare() {
    for wl in Workload::ALL {
        let sys = HareSystem::start(HareConfig::timeshare(4));
        check(&*sys, wl, 3);
        sys.shutdown();
    }
}

#[test]
fn all_workloads_on_ramfs() {
    for wl in Workload::ALL {
        let sys = HostSystem::ramfs(4);
        check(&*sys, wl, 3);
        sys.shutdown();
    }
}

#[test]
fn all_workloads_on_unfs_single_core() {
    // The paper runs UNFS3 single-core (Figure 8): NFS cannot share
    // descriptors across processes, so multi-core runs of the shared-fd
    // workloads are not meaningful (paper §2.2).
    for wl in Workload::ALL {
        let sys = HostSystem::unfs(2);
        check(&*sys, wl, 1);
        sys.shutdown();
    }
}

#[test]
fn hare_split_configuration_runs() {
    for wl in [Workload::Creates, Workload::Mailbench, Workload::BuildLinux] {
        let sys = HareSystem::start(HareConfig::split(4, 2));
        check(&*sys, wl, 2);
        sys.shutdown();
    }
}

#[test]
fn techniques_disabled_still_correct() {
    // Every ablation configuration must stay functionally correct — the
    // Figure 9 experiments only make sense if disabling a technique
    // changes performance, not results.
    for t in [
        "distribution",
        "broadcast",
        "direct_access",
        "dircache",
        "affinity",
    ] {
        for wl in [
            Workload::Creates,
            Workload::Directories,
            Workload::RmSparse,
            Workload::Extract,
            Workload::Mailbench,
        ] {
            let mut cfg = HareConfig::timeshare(4);
            cfg.techniques = hare::Techniques::without(t);
            let sys = HareSystem::start(cfg);
            let s = Scale::quick();
            workloads::run(&*sys, wl, 2, &s)
                .unwrap_or_else(|e| panic!("{wl} with {t} disabled failed: {e}"));
            sys.shutdown();
        }
    }
}

#[test]
fn op_mix_differs_by_workload() {
    // Figure 5's point: the benchmarks stress different operations.
    let sys = HareSystem::start(HareConfig::timeshare(2));
    let s = Scale::quick();
    let creates = workloads::run(&*sys, Workload::Creates, 2, &s).unwrap();
    sys.shutdown();

    let sys = HareSystem::start(HareConfig::timeshare(2));
    let renames = workloads::run(&*sys, Workload::Renames, 2, &s).unwrap();
    sys.shutdown();

    use hare_workloads::OpKind;
    assert!(creates.stats.get(OpKind::Creat) > creates.stats.get(OpKind::Rename));
    assert!(renames.stats.get(OpKind::Rename) > 0);
    assert!(
        renames.stats.get(OpKind::Rename) > renames.stats.get(OpKind::Creat),
        "renames workload must be rename-dominated"
    );
}

#[test]
fn throughput_is_finite_and_positive() {
    let sys = HareSystem::start(HareConfig::timeshare(2));
    let r = workloads::run(&*sys, Workload::Creates, 2, &Scale::quick()).unwrap();
    assert!(r.throughput() > 0.0);
    assert!(r.throughput().is_finite());
    assert!(r.virtual_secs() > 0.0);
    sys.shutdown();
}
