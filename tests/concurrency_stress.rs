//! Concurrency stress: many processes hammer one distributed directory
//! with mixed namespace operations while others read; afterwards the
//! namespace must exactly match the deterministic expectation.

use fsapi::{read_to_vec, write_file, Errno, MkdirOpts, Mode, ProcFs, ProcHandle, System};
use hare::{HareConfig, HareSystem};
use std::collections::BTreeSet;

#[test]
fn mixed_namespace_storm_converges() {
    let sys = HareSystem::start(HareConfig::timeshare(6));
    let root = sys.start_proc();
    root.mkdir_opts("/storm", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();

    // Each worker: create K files, rename half of them, delete a third,
    // create and remove directories, all in the shared directory.
    const WORKERS: usize = 6;
    const K: usize = 30;
    let mut joins = Vec::new();
    for w in 0..WORKERS {
        joins.push(
            root.spawn(Box::new(move |p: &hare::HareProc| {
                for i in 0..K {
                    let f = format!("/storm/w{w}_f{i}");
                    write_file(p, &f, format!("{w}:{i}").as_bytes()).unwrap();
                    if i % 2 == 0 {
                        p.rename(&f, &format!("/storm/w{w}_r{i}")).unwrap();
                    }
                    if i % 3 == 0 {
                        let victim = if i % 2 == 0 {
                            format!("/storm/w{w}_r{i}")
                        } else {
                            f.clone()
                        };
                        p.unlink(&victim).unwrap();
                    }
                    let d = format!("/storm/w{w}_d{i}");
                    p.mkdir_opts(&d, Mode::default(), MkdirOpts::DISTRIBUTED)
                        .unwrap();
                    if i % 2 == 1 {
                        p.rmdir(&d).unwrap();
                    }
                }
                0
            }))
            .unwrap(),
        );
    }
    // Concurrent readers listing the directory must never crash or see
    // duplicate names (non-linearizable snapshots are allowed, paper §3.3).
    for _ in 0..2 {
        joins.push(
            root.spawn(Box::new(|p: &hare::HareProc| {
                for _ in 0..20 {
                    let entries = p.readdir("/storm").unwrap();
                    let names: BTreeSet<&str> = entries.iter().map(|e| e.name.as_str()).collect();
                    assert_eq!(names.len(), entries.len(), "duplicate entries");
                }
                0
            }))
            .unwrap(),
        );
    }
    for j in joins {
        assert_eq!(j.wait(), 0);
    }

    // Deterministic expectation per worker.
    let mut expect = BTreeSet::new();
    for w in 0..WORKERS {
        for i in 0..K {
            let renamed = i % 2 == 0;
            let deleted = i % 3 == 0;
            if !deleted {
                if renamed {
                    expect.insert(format!("w{w}_r{i}"));
                } else {
                    expect.insert(format!("w{w}_f{i}"));
                }
            }
            if i % 2 == 0 {
                expect.insert(format!("w{w}_d{i}"));
            }
        }
    }
    let got: BTreeSet<String> = root
        .readdir("/storm")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(got, expect);

    // Surviving files still hold their contents.
    for w in 0..WORKERS {
        for i in (0..K).filter(|i| i % 3 != 0 && i % 2 == 1) {
            let data = read_to_vec(&root, &format!("/storm/w{w}_f{i}")).unwrap();
            assert_eq!(data, format!("{w}:{i}").as_bytes());
        }
    }
    drop(root);
    sys.shutdown();
}

#[test]
fn storm_with_each_technique_disabled() {
    for t in [
        "distribution",
        "broadcast",
        "direct_access",
        "dircache",
        "affinity",
    ] {
        let mut cfg = HareConfig::timeshare(4);
        cfg.techniques = hare::Techniques::without(t);
        let sys = HareSystem::start(cfg);
        let root = sys.start_proc();
        root.mkdir_opts("/mini", Mode::default(), MkdirOpts::DISTRIBUTED)
            .unwrap();
        let mut joins = Vec::new();
        for w in 0..4 {
            joins.push(
                root.spawn(Box::new(move |p: &hare::HareProc| {
                    for i in 0..10 {
                        write_file(p, &format!("/mini/{w}_{i}"), b"x").unwrap();
                    }
                    0
                }))
                .unwrap(),
            );
        }
        for j in joins {
            assert_eq!(j.wait(), 0, "technique {t}");
        }
        assert_eq!(root.readdir("/mini").unwrap().len(), 40, "technique {t}");
        assert_eq!(root.stat("/mini/0_0").unwrap().size, 1, "technique {t}");
        assert_eq!(root.unlink("/mini/missing").unwrap_err(), Errno::ENOENT);
        drop(root);
        sys.shutdown();
    }
}
